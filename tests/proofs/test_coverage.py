"""Workload adequacy: the harness actually exercises the hard cases."""

import pytest

from repro.proofs.coverage import format_coverage, measure_coverage
from repro.proofs.registry import ALL_ENTRIES


@pytest.mark.parametrize("entry", ALL_ENTRIES, ids=[e.name for e in ALL_ENTRIES])
def test_workloads_are_adequate(entry):
    report = measure_coverage(entry, executions=5, operations=10)
    # Every workload must produce genuine concurrency (else Commutativity
    # and the EO/TO distinction are vacuous) ...
    assert report.has_concurrency, f"{entry.name}: no concurrent pairs"
    assert report.max_antichain >= 2
    # ... and a healthy mix of updates and queries.
    assert report.updates >= 10
    assert report.queries >= 5
    assert len(report.method_counts) >= 2


@pytest.mark.parametrize(
    "name", ["OR-Set", "RGA", "LWW-Element Set", "Multi-Value Reg."]
)
def test_partial_visibility_reads_occur(name):
    entry = next(e for e in ALL_ENTRIES if e.name == name)
    report = measure_coverage(entry, executions=5, operations=10)
    # Reads that saw strictly fewer updates than exist: the situations
    # where RA-linearizability's sub-sequence relaxation matters.
    assert report.has_partial_reads, f"{name}: all reads saw everything"


def test_format_coverage():
    entry = ALL_ENTRIES[0]
    report = measure_coverage(entry, executions=2, operations=6)
    text = format_coverage([report])
    assert entry.name in text
    assert "conc.pairs" in text
