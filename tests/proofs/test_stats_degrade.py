"""``repro stats`` must render artifacts from any repo vintage (S1).

Older metrics artifacts predate whole metric families (steal, fp-store,
DPOR, pstate) and even individual dump fields.  ``format_metrics`` must
degrade gracefully — ``-`` for missing values, explicit ``(absent)``
rows for missing families — never crash.
"""

from repro.obs.instrument import ARTIFACT_SCHEMA
from repro.proofs.report import format_metrics


def _artifact(instruments):
    return {
        "schema": ARTIFACT_SCHEMA,
        "command": "exhaustive",
        "metrics": {"schema": "repro.metrics/1", "instruments": instruments},
        "counters": {},
        "events": [],
    }


def test_sparse_instrument_dumps_do_not_crash():
    rendered = format_metrics(_artifact({
        "verify.configurations{entry=X}": {
            "name": "verify.configurations", "deterministic": True,
            "kind": "counter",  # no value field
        },
        "no.kind.at.all": {"name": "no.kind.at.all", "value": 3},
        "gauge.no.policy": {"kind": "gauge", "name": "gauge.no.policy",
                            "value": 7},
        "hist.sparse": {"kind": "histogram", "name": "hist.sparse"},
    }))
    assert "verify.configurations{entry=X}" in rendered
    assert "-" in rendered  # missing value renders as a dash
    assert "(?)" in rendered  # missing gauge policy
    assert "hist.sparse" in rendered


def test_pre_observatory_artifact_names_absent_families():
    # An artifact with engine counters but none of the newer families
    # (PR-5 vintage): every family row must say (absent).
    rendered = format_metrics(_artifact({
        "explore.states_visited{kind=op}": {
            "kind": "counter", "name": "explore.states_visited",
            "labels": {"kind": "op"}, "deterministic": False, "value": 42,
        },
    }))
    for label in ("work stealing", "fingerprint store", "source-DPOR",
                  "persistent state"):
        assert f"{label:<52} {'(absent)':>12}" in rendered


def test_present_family_is_not_marked_absent():
    rendered = format_metrics(_artifact({
        "explore.steal.stolen_tasks{entry=X}": {
            "kind": "counter", "name": "explore.steal.stolen_tasks",
            "labels": {"entry": "X"}, "deterministic": False, "value": 3,
        },
    }))
    assert "tasks stolen" in rendered
    lines = [line for line in rendered.splitlines() if "(absent)" in line]
    assert len(lines) == 3  # fp-store, dpor, pstate — but not stealing
    assert not any("work stealing" in line for line in lines)


def test_artifact_without_explore_metrics_skips_scheduler_digest():
    rendered = format_metrics(_artifact({
        "check.checks{entry=X}": {
            "kind": "counter", "name": "check.checks",
            "labels": {"entry": "X"}, "deterministic": False, "value": 9,
        },
    }))
    assert "scheduler" not in rendered
    assert "(absent)" not in rendered


def test_empty_artifact_renders_header_and_event_count():
    rendered = format_metrics({})
    assert rendered.splitlines()[0].startswith("metrics artifact")
    assert rendered.splitlines()[-1] == "trace events: 0"
