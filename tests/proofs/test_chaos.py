"""The chaos soak harness (`proofs/chaos.py`) and its trace replay."""

import json

import pytest

from repro.obs import Instrumentation
from repro.proofs import (
    ALL_ENTRIES,
    chaos_soak,
    default_plans,
    dump_trace,
    entry_by_name,
    format_chaos,
    plan_by_name,
    replay_trace,
    run_chaos,
)
from repro.runtime.faults import FaultPlan

ENTRY_NAMES = [entry.name for entry in ALL_ENTRIES]
PLAN_NAMES = [plan.name for plan in default_plans()]


class TestSoak:
    @pytest.mark.parametrize("entry_name", ENTRY_NAMES)
    @pytest.mark.parametrize("plan_name", PLAN_NAMES)
    def test_every_entry_survives_every_plan(self, entry_name, plan_name):
        # The acceptance criterion: RA-linearizable + converged for every
        # registry entry, including the crash+recovery plan and the
        # 0.9-drop plan.
        report = run_chaos(
            entry_by_name(entry_name), seed=0, plan=plan_by_name(plan_name)
        )
        assert report.ra_ok, report.reason
        assert report.converged, report.reason

    def test_soak_covers_entries_plans_and_seeds(self):
        entries = [entry_by_name("Counter"), entry_by_name("G-Set")]
        reports = chaos_soak(entries, soak=2, base_seed=5)
        assert len(reports) == 2 * len(default_plans()) * 2
        assert {r.seed for r in reports} == {5, 6}
        assert all(r.ok for r in reports)

    def test_crash_plan_actually_crashes(self):
        report = run_chaos(
            entry_by_name("OR-Set"), seed=1, plan=plan_by_name("crash")
        )
        kinds = report.trace.event_counts()
        assert kinds.get("crash", 0) >= 1
        assert kinds.get("recover", 0) >= 1
        assert report.ok

    def test_high_loss_plan_actually_drops(self):
        plan = plan_by_name("high-loss")
        assert plan.drop_probability == 0.9
        report = run_chaos(entry_by_name("PN-Counter"), seed=1, plan=plan)
        assert report.trace.event_counts().get("drop", 0) > 0
        assert report.ok

    def test_operations_budget_comes_from_registry(self):
        entry = entry_by_name("RGA")
        report = run_chaos(entry, seed=0)
        # chaos_operations invocations plus one closing read per replica.
        assert report.operations == entry.chaos_operations + 3


class TestDeterminism:
    def test_same_seed_and_plan_identical_trace(self):
        entry = entry_by_name("LWW-Element Set")
        plan = plan_by_name("baseline")
        one = run_chaos(entry, seed=9, plan=plan)
        two = run_chaos(entry, seed=9, plan=plan)
        assert one.trace.events == two.trace.events
        assert one.trace.fingerprint() == two.trace.fingerprint()
        assert (one.ra_ok, one.converged) == (two.ra_ok, two.converged)

    def test_different_seeds_differ(self):
        entry = entry_by_name("LWW-Element Set")
        plan = plan_by_name("baseline")
        assert (
            run_chaos(entry, seed=9, plan=plan).trace.fingerprint()
            != run_chaos(entry, seed=10, plan=plan).trace.fingerprint()
        )


class TestTraceReplay:
    def test_dump_and_replay_round_trip(self, tmp_path):
        report = run_chaos(
            entry_by_name("Wooki"), seed=4, plan=plan_by_name("crash")
        )
        path = str(tmp_path / "trace.json")
        document = dump_trace(report, path)
        assert document["fingerprint"] == report.trace.fingerprint()
        replay = replay_trace(path)
        assert replay.trace_matches
        assert replay.verdict_matches
        assert replay.ok

    def test_replay_detects_tampered_fingerprint(self, tmp_path):
        report = run_chaos(entry_by_name("Counter"), seed=2)
        path = str(tmp_path / "trace.json")
        dump_trace(report, path)
        document = json.loads(open(path).read())
        document["fingerprint"] = "0" * 64
        replay = replay_trace(document)
        assert not replay.trace_matches
        assert not replay.ok

    def test_replay_rejects_non_trace(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"schema": "nope"}')
        with pytest.raises(ValueError, match="not a chaos trace"):
            replay_trace(str(path))


class TestInstrumentation:
    def test_chaos_metrics_recorded(self):
        ins = Instrumentation.on()
        report = run_chaos(
            entry_by_name("Counter"), seed=0, plan=plan_by_name("baseline"),
            instrumentation=ins,
        )
        snapshot = ins.metrics.snapshot()
        keys = snapshot["instruments"]
        runs = keys["chaos.runs{entry=Counter,plan=baseline}"]
        assert runs["value"] == 1
        ok = keys["chaos.ok{entry=Counter,plan=baseline}"]
        assert ok["value"] == (1 if report.ok else 0)
        assert any(key.startswith("chaos.events{") for key in keys)

    def test_null_instrumentation_is_default(self):
        # Must not raise without metrics attached.
        assert run_chaos(entry_by_name("Counter"), seed=0).ok


class TestFormat:
    def test_format_chaos_table(self):
        reports = chaos_soak([entry_by_name("Counter")], soak=1)
        text = format_chaos(reports, title="soak")
        assert text.startswith("soak")
        assert "Counter" in text and "baseline" in text
        assert "failures:" not in text

    def test_format_chaos_lists_failures(self):
        report = run_chaos(entry_by_name("Counter"), seed=0)
        report.ra_ok = False
        report.reason = "synthetic failure"
        text = format_chaos([report])
        assert "failures:" in text and "synthetic failure" in text


class TestPlans:
    def test_default_plans_cover_required_scenarios(self):
        plans = {plan.name: plan for plan in default_plans()}
        assert plans["high-loss"].drop_probability == 0.9
        assert plans["crash"].crashes and plans["crash"].recovers()
        assert plans["partition"].partitions

    def test_plan_by_name_unknown(self):
        with pytest.raises(KeyError):
            plan_by_name("nope")
