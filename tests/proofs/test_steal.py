"""Work-stealing pool vs serial: the exactness contract.

Stealing re-partitions *which worker* explores a subtree, never
*whether* it is explored, so every run — natural splitting, forced
splitting, symmetric scopes, shared budgets, spill tiers — must return
the serial verdict and the serial distinct-configuration count.  The
1-core fallback makes jobs>1 degenerate to the serial engine on small
machines, so these tests force real worker processes with
``oversubscribe=True`` and force splitting with a huge pending target.
"""

import os

import pytest

from repro.obs import Instrumentation, deterministic_totals
from repro.proofs.exhaustive import (
    exhaustive_verify,
    exhaustive_verify_state,
    standard_programs,
)
from repro.proofs.parallel import (
    exhaustive_verify_parallel,
    standard_scopes,
    verify_scopes_parallel,
)
from repro.proofs.registry import entry_by_name
from repro.proofs.steal import (
    StealStats,
    exhaustive_verify_steal,
    steal_workers,
    verify_scopes_steal,
)

#: Force real worker processes and aggressive splitting: a pending
#: target no real queue reaches makes every eligible DFS node split.
FORCE = dict(oversubscribe=True, pending_target=10**6, split_interval=1)

SYM_PROGRAMS = {
    "r1": [("inc", ()), ("read", ())],
    "r2": [("inc", ()), ("read", ())],
}


def _serial(entry, programs, max_gossips):
    if entry.kind == "OB":
        return exhaustive_verify(entry, programs)
    return exhaustive_verify_state(entry, programs, max_gossips=max_gossips)


class TestStealMatchesSerial:
    def test_all_scopes_one_pool(self):
        # The acceptance criterion: every registry entry through one
        # work-stealing pool returns the serial verdict and the serial
        # distinct-configuration count.
        scopes = standard_scopes()
        assert scopes
        sink = {}
        merged = verify_scopes_steal(
            scopes, jobs=3, oversubscribe=True, split_interval=2,
            stats_sink=sink,
        )
        assert list(merged) == [entry.name for entry, _, _ in scopes]
        assert sink["steal"].workers == 3
        for entry, programs, max_gossips in scopes:
            serial = _serial(entry, programs, max_gossips)
            assert merged[entry.name].ok == serial.ok, entry.name
            assert merged[entry.name].configurations \
                == serial.configurations, entry.name

    def test_forced_splitting_op_based(self):
        entry = entry_by_name("Counter")
        programs = standard_programs(entry)
        serial = exhaustive_verify(entry, programs)
        sink = {}
        stolen = exhaustive_verify_steal(
            entry, programs, jobs=2, stats_sink=sink, **FORCE
        )
        stats = sink["steal"]
        assert stats.stolen_tasks > 0  # splitting actually happened
        assert stats.tasks == stats.seed_tasks + stats.stolen_tasks
        assert len(stats.timeline) == stats.tasks
        assert set(stats.spawn_times) \
            == {t for t in (r[0] for r in stats.timeline) if t[0] == "w"}
        assert stolen.ok == serial.ok
        assert stolen.configurations == serial.configurations
        assert stolen.stats.steal_spawned > 0

    def test_forced_splitting_state_based(self):
        entry = entry_by_name("G-Counter")
        programs = standard_programs(entry)
        serial = exhaustive_verify_state(entry, programs, max_gossips=2)
        sink = {}
        stolen = exhaustive_verify_steal(
            entry, programs, jobs=2, max_gossips=2, stats_sink=sink, **FORCE
        )
        assert sink["steal"].stolen_tasks > 0
        assert stolen.ok == serial.ok
        assert stolen.configurations == serial.configurations

    def test_symmetry_on_and_off(self):
        entry = entry_by_name("Counter")
        on = exhaustive_verify(entry, SYM_PROGRAMS)
        off = exhaustive_verify(entry, SYM_PROGRAMS, symmetry=False)
        assert on.configurations < off.configurations
        stolen_on = exhaustive_verify_steal(
            entry, SYM_PROGRAMS, jobs=2, **FORCE
        )
        stolen_off = exhaustive_verify_steal(
            entry, SYM_PROGRAMS, jobs=2, symmetry=False, **FORCE
        )
        assert stolen_on.configurations == on.configurations
        assert stolen_off.configurations == off.configurations

    def test_raw_fingerprints_without_store(self):
        # fp_store=False falls back to raw-fingerprint sets (the static
        # path's representation); the merge must still be exact.
        entry = entry_by_name("Counter")
        programs = standard_programs(entry)
        serial = exhaustive_verify(entry, programs)
        stolen = exhaustive_verify_steal(
            entry, programs, jobs=2, fp_store=False, **FORCE
        )
        assert stolen.configurations == serial.configurations
        assert stolen.fp_store is None

    def test_spill_tier(self, tmp_path):
        entry = entry_by_name("Counter")
        programs = standard_programs(entry)
        serial = exhaustive_verify(entry, programs)
        stolen = exhaustive_verify_steal(
            entry, programs, jobs=2, spill=str(tmp_path), **FORCE
        )
        assert stolen.configurations == serial.configurations
        assert stolen.fp_store is not None
        assert stolen.fp_store.lookups > 0
        assert not list(tmp_path.iterdir())  # scratch files cleaned up


class TestSharedBudget:
    """``max_configurations`` is a cross-worker budget: parallel and
    serial stop at exactly the same count, stolen tasks included."""

    @pytest.mark.parametrize("cap", [1, 3, 7, 10**6])
    def test_exact_cutoff_op_based(self, cap):
        entry = entry_by_name("Counter")
        programs = standard_programs(entry)
        serial = exhaustive_verify(
            entry, programs, max_configurations=cap
        )
        stolen = exhaustive_verify_steal(
            entry, programs, jobs=2, max_configurations=cap, **FORCE
        )
        assert stolen.configurations == serial.configurations
        assert stolen.stats.capped == serial.stats.capped

    def test_exact_cutoff_state_based(self):
        entry = entry_by_name("G-Counter")
        programs = standard_programs(entry)
        serial = exhaustive_verify_state(
            entry, programs, max_gossips=2, max_configurations=5
        )
        stolen = exhaustive_verify_steal(
            entry, programs, jobs=2, max_gossips=2, max_configurations=5,
            **FORCE
        )
        assert stolen.configurations == serial.configurations == 5
        assert stolen.stats.capped

    def test_cutoff_through_parallel_front_door(self):
        # The satellite: exhaustive_verify with jobs>1 and a budget used
        # to be rejected; the stealing path honors it exactly.
        entry = entry_by_name("Counter")
        programs = standard_programs(entry)
        serial = exhaustive_verify(entry, programs, max_configurations=9)
        parallel = exhaustive_verify(
            entry, programs, jobs=2, max_configurations=9, oversubscribe=True
        )
        assert parallel.configurations == serial.configurations == 9


class TestPoolMechanics:
    def test_steal_workers_clamp(self, monkeypatch):
        monkeypatch.setattr("repro.proofs.steal.os.cpu_count", lambda: 4)
        assert steal_workers(1) == 1
        assert steal_workers(0) == 1  # floor of one
        assert steal_workers(8) == 4  # core cap
        assert steal_workers(8, oversubscribe=True) == 8
        monkeypatch.setattr(
            "repro.proofs.steal.os.cpu_count", lambda: None
        )
        assert steal_workers(8) == 1

    def test_single_worker_runs_inline(self, monkeypatch):
        # One effective worker must not pay fork + pickle + queue costs:
        # the pool path is never entered.
        def _boom(*args, **kwargs):
            raise AssertionError("mp.Process used for a 1-worker pool")

        monkeypatch.setattr("repro.proofs.steal.os.cpu_count", lambda: 1)
        monkeypatch.setattr("repro.proofs.steal.mp.Process", _boom)
        entry = entry_by_name("Counter")
        programs = standard_programs(entry)
        sink = {}
        result = exhaustive_verify_steal(
            entry, programs, jobs=8, stats_sink=sink
        )
        assert result.configurations \
            == exhaustive_verify(entry, programs).configurations
        assert isinstance(sink["steal"], StealStats)
        assert sink["steal"].workers == 1
        assert sink["steal"].stolen_tasks == 0

    def test_worker_error_propagates(self, monkeypatch):
        def _crash(worker_id, scope_table, task_q, ack_q, *rest):
            ack_q.put(("err", worker_id, "BoomError: injected", "trace"))

        monkeypatch.setattr(
            "repro.proofs.steal._steal_worker_main", _crash
        )
        entry = entry_by_name("Counter")
        with pytest.raises(RuntimeError, match="injected"):
            exhaustive_verify_steal(
                entry, standard_programs(entry), jobs=2, oversubscribe=True
            )

    def test_dead_worker_detected(self, monkeypatch):
        def _die(*args, **kwargs):
            os._exit(3)

        monkeypatch.setattr(
            "repro.proofs.steal._steal_worker_main", _die
        )
        entry = entry_by_name("Counter")
        with pytest.raises(RuntimeError, match="died"):
            exhaustive_verify_steal(
                entry, standard_programs(entry), jobs=2, oversubscribe=True
            )


class TestDispatch:
    """The parallel front door routes to stealing by default."""

    def test_default_routes_to_steal(self, monkeypatch):
        sentinel = object()
        seen = {}

        def _fake(entry, programs, **kwargs):
            seen.update(kwargs)
            return sentinel

        monkeypatch.setattr(
            "repro.proofs.steal.exhaustive_verify_steal", _fake
        )
        entry = entry_by_name("Counter")
        programs = standard_programs(entry)
        assert exhaustive_verify_parallel(entry, programs, jobs=2) \
            is sentinel
        assert seen["jobs"] == 2
        assert exhaustive_verify_parallel(
            entry, programs, jobs=2, steal=True, spill="/tmp/x",
            max_configurations=4,
        ) is sentinel
        assert seen["spill"] == "/tmp/x"
        assert seen["max_configurations"] == 4

    def test_steal_off_uses_static_path(self, monkeypatch):
        def _fail(*args, **kwargs):
            raise AssertionError("steal path used despite steal=False")

        monkeypatch.setattr(
            "repro.proofs.steal.exhaustive_verify_steal", _fail
        )
        entry = entry_by_name("Counter")
        programs = standard_programs(entry)
        serial = exhaustive_verify(entry, programs)
        static = exhaustive_verify_parallel(
            entry, programs, jobs=2, steal=False
        )
        assert static.configurations == serial.configurations

    def test_static_path_rejects_budget_and_spill(self):
        entry = entry_by_name("Counter")
        programs = standard_programs(entry)
        with pytest.raises(ValueError, match="work-stealing"):
            exhaustive_verify_parallel(
                entry, programs, jobs=2, steal=False, max_configurations=5
            )
        with pytest.raises(ValueError, match="work-stealing"):
            exhaustive_verify_parallel(
                entry, programs, jobs=2, steal=False, spill="/tmp/x"
            )
        with pytest.raises(ValueError, match="work-stealing"):
            verify_scopes_parallel(
                standard_scopes()[:1], jobs=2, steal=False,
                max_configurations=5,
            )

    def test_scopes_front_door_steal_off_matches(self):
        scopes = standard_scopes()[:2]
        static = verify_scopes_parallel(scopes, jobs=2, steal=False)
        for entry, programs, max_gossips in scopes:
            serial = _serial(entry, programs, max_gossips)
            assert static[entry.name].configurations \
                == serial.configurations


class TestInstrumentation:
    def test_scheduler_and_store_instruments_emitted(self):
        entry = entry_by_name("Counter")
        programs = standard_programs(entry)
        ins = Instrumentation.on()
        exhaustive_verify_steal(
            entry, programs, jobs=2, instrumentation=ins, **FORCE
        )
        instruments = ins.metrics.snapshot()["instruments"]
        bare = {key.split("{", 1)[0] for key in instruments}
        assert "explore.steal.workers" in bare
        assert "explore.steal.stolen_tasks" in bare
        assert "explore.steal.idle_seconds" in bare
        assert "explore.fp_store.lookups" in bare
        assert instruments["explore.steal.workers"]["value"] == 2

    def test_deterministic_totals_match_serial(self):
        entry = entry_by_name("Counter")
        programs = standard_programs(entry)
        serial_ins = Instrumentation.on()
        exhaustive_verify(entry, programs, instrumentation=serial_ins)
        steal_ins = Instrumentation.on()
        exhaustive_verify_steal(
            entry, programs, jobs=2, instrumentation=steal_ins, **FORCE
        )
        assert deterministic_totals(steal_ins.metrics.snapshot()) \
            == deterministic_totals(serial_ins.metrics.snapshot())
