"""The process-parallel verification fan-out (:mod:`repro.proofs.parallel`).

The acceptance bar for the parallel pipeline is *bit-for-bit agreement*
with the serial checkers: same verdict and same distinct-configuration
count for every registry entry, on both sharding axes (whole-tree tasks
and frontier-split root branches).
"""

import dataclasses

import pytest

from repro.proofs.exhaustive import (
    exhaustive_verify,
    exhaustive_verify_state,
    standard_programs,
)
from repro.proofs.parallel import (
    _worker_count,
    exhaustive_verify_parallel,
    standard_scopes,
    verify_entries_parallel,
    verify_scopes_parallel,
)
from repro.proofs.registry import ALL_ENTRIES, entry_by_name
from repro.proofs.report import verify_entry


def _serial(entry, programs, max_gossips):
    if entry.kind == "OB":
        return exhaustive_verify(entry, programs)
    return exhaustive_verify_state(entry, programs, max_gossips=max_gossips)


class TestScopesParallel:
    def test_matches_serial_on_every_registry_entry(self):
        # The acceptance criterion: for every registry entry with standard
        # programs, the parallel pipeline returns the serial verdict and
        # the serial distinct-configuration count.
        scopes = standard_scopes()
        assert scopes, "standard scope suite must not be empty"
        parallel = verify_scopes_parallel(scopes, jobs=2)
        assert list(parallel) == [entry.name for entry, _, _ in scopes]
        for entry, programs, max_gossips in scopes:
            serial = _serial(entry, programs, max_gossips)
            merged = parallel[entry.name]
            assert merged.ok == serial.ok, entry.name
            assert merged.configurations == serial.configurations, entry.name

    def test_few_scopes_frontier_split_path(self):
        # One scope, four jobs: the adaptive granularity must switch to
        # frontier-split shards — and still merge to the serial answer.
        entry = entry_by_name("Counter")
        programs = standard_programs(entry)
        serial = exhaustive_verify(entry, programs)
        merged = verify_scopes_parallel([(entry, programs, None)], jobs=4)
        assert merged[entry.name].ok == serial.ok
        assert merged[entry.name].configurations == serial.configurations


class TestFrontierSplit:
    @pytest.mark.parametrize("name", ["Counter", "OR-Set"])
    def test_op_based_entry(self, name):
        entry = entry_by_name(name)
        programs = standard_programs(entry)
        serial = exhaustive_verify(entry, programs)
        split = exhaustive_verify_parallel(entry, programs, jobs=3)
        assert split.ok == serial.ok
        assert split.configurations == serial.configurations

    def test_state_based_entry(self):
        entry = entry_by_name("G-Counter")
        programs = standard_programs(entry)
        serial = exhaustive_verify_state(entry, programs, max_gossips=2)
        split = exhaustive_verify_parallel(
            entry, programs, jobs=3, max_gossips=2
        )
        assert split.ok == serial.ok
        assert split.configurations == serial.configurations


class TestEntriesParallel:
    def test_matches_serial_randomized_harness(self):
        entries = ALL_ENTRIES[:4]
        serial = [verify_entry(e, executions=3, operations=5) for e in entries]
        parallel = verify_entries_parallel(
            entries, executions=3, operations=5, jobs=2
        )
        assert parallel == serial  # dataclass equality: every field


class TestGuards:
    def test_unregistered_entry_rejected(self):
        base = entry_by_name("Counter")
        rogue = dataclasses.replace(base, name="not-in-registry")
        with pytest.raises(ValueError, match="not in the registry"):
            exhaustive_verify_parallel(rogue, standard_programs(base), jobs=2)

    def test_worker_count_caps(self):
        assert _worker_count(1, 10) == 1
        assert _worker_count(8, 3) <= 3  # never more workers than tasks
        assert _worker_count(4, 0) == 1  # floor of one
        import os
        assert _worker_count(64, 64) <= (os.cpu_count() or 64)

    def test_worker_count_clamp_matrix(self, monkeypatch):
        monkeypatch.setattr("repro.proofs.parallel.os.cpu_count", lambda: 4)
        # --jobs 0 maps to default_jobs() = all cores; with fewer tasks
        # than cores the pool must not spawn idle processes.
        from repro.proofs.parallel import default_jobs
        assert default_jobs() == 4
        assert _worker_count(default_jobs(), 2) == 2
        assert _worker_count(8, 100) == 4  # physical-core cap
        assert _worker_count(8, 100, oversubscribe=True) == 8  # cap lifted
        assert _worker_count(8, 3, oversubscribe=True) == 3  # task cap stays
        assert _worker_count(2, 1) == 1
        assert _worker_count(0, 10) == 1  # degenerate jobs floor to one
        monkeypatch.setattr(
            "repro.proofs.parallel.os.cpu_count", lambda: None
        )
        assert _worker_count(8, 100) == 8  # unknown core count: trust jobs

    def test_single_worker_runs_inline(self, monkeypatch):
        # One effective worker (task count or core cap) must run in the
        # calling process — no executor, no fork/pickle overhead.
        def _boom(*args, **kwargs):
            raise AssertionError("executor used for a 1-worker pool")

        monkeypatch.setattr(
            "repro.proofs.parallel.ProcessPoolExecutor", _boom
        )
        monkeypatch.setattr("repro.proofs.parallel.os.cpu_count", lambda: 1)
        entry = entry_by_name("Counter")
        programs = standard_programs(entry)
        serial = exhaustive_verify(entry, programs)
        inline = exhaustive_verify_parallel(
            entry, programs, jobs=4, steal=False
        )
        assert inline.configurations == serial.configurations
        results = verify_entries_parallel(
            ALL_ENTRIES[:2], executions=2, operations=4, jobs=1
        )
        assert results == [
            verify_entry(e, executions=2, operations=4)
            for e in ALL_ENTRIES[:2]
        ]


class TestSymmetricSharding:
    """Orbit-aware frontier split: symmetric root branches are not fanned
    out, and the merged result still equals the serial symmetric run."""

    SYM_PROGRAMS = {
        "r1": [("inc", ()), ("read", ())],
        "r2": [("inc", ()), ("read", ())],
    }

    def test_op_based_matches_serial_with_symmetry(self):
        entry = entry_by_name("Counter")
        serial = exhaustive_verify(entry, self.SYM_PROGRAMS)
        split = exhaustive_verify_parallel(entry, self.SYM_PROGRAMS, jobs=4)
        assert split.ok == serial.ok
        assert split.configurations == serial.configurations
        assert split.stats.symmetry_group == 2

    def test_state_based_matches_serial_with_symmetry(self):
        entry = entry_by_name("G-Counter")
        serial = exhaustive_verify_state(
            entry, self.SYM_PROGRAMS, max_gossips=2
        )
        split = exhaustive_verify_parallel(
            entry, self.SYM_PROGRAMS, jobs=4, max_gossips=2
        )
        assert split.ok == serial.ok
        assert split.configurations == serial.configurations

    def test_symmetry_override_off_matches_serial(self):
        entry = entry_by_name("Counter")
        serial = exhaustive_verify(entry, self.SYM_PROGRAMS, symmetry=False)
        split = exhaustive_verify_parallel(
            entry, self.SYM_PROGRAMS, jobs=4, symmetry=False
        )
        assert split.configurations == serial.configurations
        assert split.configurations > exhaustive_verify_parallel(
            entry, self.SYM_PROGRAMS, jobs=4
        ).configurations

    def test_symmetric_branches_are_skipped(self):
        from repro.proofs.parallel import _branch_tasks, _root_transitions

        entry = entry_by_name("Counter")
        transitions = _root_transitions("OB", self.SYM_PROGRAMS, None)
        assert len(transitions) == 2
        tasks = _branch_tasks(entry, self.SYM_PROGRAMS, None, None, None,
                              True)
        assert [task[6] for task in tasks] == [0]  # second branch ≅ first
        tasks_off = _branch_tasks(entry, self.SYM_PROGRAMS, None, None,
                                  False, True)
        assert [task[6] for task in tasks_off] == [0, 1]
