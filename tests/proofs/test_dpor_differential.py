"""Sleep / source / optimal DPOR differential equality.

Source-DPOR prunes interleavings whose race reversals are already
covered, and optimal DPOR layers wakeup-tree continuations, patch cuts
and vacuity drops on top; the contract is that every layer of pruning is
invisible in the results — distinct-configuration counts, verdicts, and
failure lists stay bit-for-bit identical with the classic sleep-set
explorer on every registry entry, serially and through both parallel
front doors, with replica symmetry on and off.  A registry-level pin of
the ``snapshot_safe=False`` deepcopy fallback rides along: a CRDT that
mutates its state in place must bypass persistent snapshots and still
verify identically under every POR flavor.
"""

import dataclasses

import pytest

from repro.core.spec import Role
from repro.crdts.base import Effector, GeneratorResult, OpBasedCRDT
from repro.proofs.exhaustive import (
    exhaustive_verify,
    exhaustive_verify_state,
    standard_programs,
)
from repro.proofs.parallel import standard_scopes, verify_scopes_parallel
from repro.proofs.registry import ALL_ENTRIES
from repro.proofs.steal import verify_scopes_steal

MAX_GOSSIPS = 2

#: The flavors under test, each compared against the sleep-set oracle.
DPOR_FLAVORS = ("source", "optimal")


def _serial(entry, por, symmetry=None):
    programs = standard_programs(entry)
    if entry.kind == "SB":
        return exhaustive_verify_state(
            entry, programs, max_gossips=MAX_GOSSIPS,
            symmetry=symmetry, por=por,
        )
    return exhaustive_verify(entry, programs, symmetry=symmetry, por=por)


def _assert_equal(source, sleep, label):
    assert source.ok == sleep.ok, label
    assert source.configurations == sleep.configurations, label
    assert source.failures == sleep.failures, label


class TestSerialDifferential:
    """Every registry entry, three-way, symmetry on and off."""

    @pytest.mark.parametrize("por", DPOR_FLAVORS)
    @pytest.mark.parametrize(
        "symmetry", [None, False], ids=["sym-default", "sym-off"]
    )
    @pytest.mark.parametrize("entry", ALL_ENTRIES, ids=lambda e: e.name)
    def test_dpor_matches_sleep(self, entry, symmetry, por):
        sleep = _serial(entry, "sleep", symmetry)
        dpor = _serial(entry, por, symmetry)
        _assert_equal(dpor, sleep, f"{entry.name}/{por}")
        # Race-driven source sets may only shrink the walk, never grow
        # it: every node the DPOR flavors expand, sleep sets expand too.
        assert (
            dpor.stats.states_visited <= sleep.stats.states_visited
        ), f"{entry.name}/{por}"

    def test_source_prunes_on_three_replicas(self):
        # On a 3-replica scope the reduction must be real, not vacuous:
        # strictly fewer interleavings walked, same configurations, and
        # the redundant-avoided counter accounts for skipped siblings.
        entry = next(e for e in ALL_ENTRIES if e.name == "Counter")
        programs = {
            r: [("inc", ()), ("read", ())] for r in ("r1", "r2", "r3")
        }
        sleep = exhaustive_verify(entry, programs, por="sleep")
        source = exhaustive_verify(entry, programs, por="source")
        _assert_equal(source, sleep, "Counter-3r")
        assert source.stats.states_visited < sleep.stats.states_visited
        assert source.stats.dpor_races > 0
        assert source.stats.dpor_redundant_avoided > 0


class TestOptimalityPin:
    """The optimal flavor's headline guarantees on the 3-replica scope."""

    @pytest.fixture(scope="class")
    def three_replica(self):
        entry = next(e for e in ALL_ENTRIES if e.name == "Counter")
        programs = {
            r: [("inc", ()), ("read", ())] for r in ("r1", "r2", "r3")
        }
        return {
            por: exhaustive_verify(entry, programs, por=por)
            for por in ("sleep", "source", "optimal")
        }

    def test_optimal_matches_sleep(self, three_replica):
        _assert_equal(
            three_replica["optimal"], three_replica["sleep"], "Counter-3r"
        )

    def test_no_full_expansions(self, three_replica):
        # Wakeup continuations and vacuity drops must absorb every
        # conservative widening: non-vacuous disabled demands degrade to
        # *counted* fallbacks, never to blanket full expansions.
        stats = three_replica["optimal"].stats
        assert stats.dpor_full_expansions == 0
        assert stats.dpor_wakeup_branches > 0

    def test_optimal_walks_no_more_than_source(self, three_replica):
        assert (
            three_replica["optimal"].stats.states_visited
            <= three_replica["source"].stats.states_visited
        )


class TestParallelDifferential:
    """Both parallel front doors agree with the serial sleep oracle."""

    @pytest.fixture(scope="class")
    def oracle(self):
        return {
            entry.name: _serial(entry, "sleep")
            for entry, _, _ in standard_scopes(max_gossips=MAX_GOSSIPS)
        }

    @pytest.mark.parametrize("por", DPOR_FLAVORS)
    @pytest.mark.parametrize("symmetry", [None, False],
                             ids=["sym-default", "sym-off"])
    def test_steal_pool_matches_serial_sleep(self, oracle, symmetry, por):
        scopes = standard_scopes(max_gossips=MAX_GOSSIPS)
        merged = verify_scopes_steal(
            scopes, jobs=2, symmetry=symmetry, oversubscribe=True,
            por=por,
        )
        for entry, _, _ in scopes:
            expected = (
                oracle[entry.name] if symmetry is None
                else _serial(entry, "sleep", symmetry)
            )
            _assert_equal(merged[entry.name], expected,
                          f"{entry.name}/{por}")

    @pytest.mark.parametrize("por", DPOR_FLAVORS)
    def test_static_pool_matches_serial_sleep(self, oracle, por):
        scopes = standard_scopes(max_gossips=MAX_GOSSIPS)
        merged = verify_scopes_parallel(
            scopes, jobs=2, steal=False, oversubscribe=True, por=por
        )
        for entry, _, _ in scopes:
            _assert_equal(merged[entry.name], oracle[entry.name],
                          f"{entry.name}/{por}")


class _MutableCounter(OpBasedCRDT):
    """Counter that mutates its state dict in place.

    Persistent snapshots assume effectors return fresh state values;
    this CRDT deliberately violates that, so it must declare
    ``snapshot_safe = False`` and ride the whole-system deepcopy
    fallback.
    """

    type_name = "Counter"
    snapshot_safe = False
    methods = {
        "inc": Role.UPDATE,
        "dec": Role.UPDATE,
        "read": Role.QUERY,
    }

    def initial_state(self):
        return {"value": 0}

    def generator(self, state, method, args, ts):
        if method == "read":
            return GeneratorResult(ret=state["value"], effector=None)
        return GeneratorResult(ret=None, effector=Effector(method))

    def apply_effector(self, state, effector):
        state["value"] += 1 if effector.method == "inc" else -1
        return state

    def fingerprint(self, state):
        return state["value"]


class TestDeepcopyFallbackRegistry:
    """Registry-level pin of the ``snapshot_safe=False`` escape hatch."""

    @pytest.mark.parametrize("por", ["sleep", "source", "optimal"])
    def test_mutable_state_counts_match_snapshot_path(self, por):
        base = next(e for e in ALL_ENTRIES if e.name == "Counter")
        mutable = dataclasses.replace(base, make_crdt=_MutableCounter)
        programs = standard_programs(base)
        fast = exhaustive_verify(base, programs, por=por)
        fallback = exhaustive_verify(mutable, programs, por=por)
        _assert_equal(fallback, fast, por)
        assert fallback.ok
        # The fallback really ran: every branch was a whole-system
        # deepcopy, never a structural-sharing snapshot — and vice
        # versa on the snapshot-safe twin.
        assert fallback.stats.deepcopies > 0
        assert fallback.stats.snapshots == 0
        assert fast.stats.snapshots > 0
        assert fast.stats.deepcopies == 0
