"""Commutativity checking (Sec. 4.1)."""

from repro.core.sentinels import ROOT
from repro.crdts import OpCounter, OpLWWRegister, OpORSet, OpRGA, OpWooki
from repro.crdts.base import Effector, GeneratorResult, OpBasedCRDT
from repro.core.spec import Role
from repro.proofs import check_commutativity, sampled_states
from repro.runtime import (
    CounterWorkload,
    ORSetWorkload,
    OpBasedSystem,
    RGAWorkload,
    WookiWorkload,
    random_op_execution,
)


class BrokenMaxRegister(OpBasedCRDT):
    """A deliberately non-commutative 'register': effectors overwrite
    unconditionally, so concurrent writes race (no timestamps)."""

    type_name = "Broken-Register"
    methods = {"write": Role.UPDATE, "read": Role.QUERY}

    def initial_state(self):
        return None

    def generator(self, state, method, args, ts):
        if method == "write":
            return GeneratorResult(None, Effector("write", args))
        return GeneratorResult(state, None)

    def apply_effector(self, state, effector):
        (value,) = effector.args
        return value


class TestCheckCommutativity:
    def test_counter_clean(self):
        system = random_op_execution(
            OpCounter(), CounterWorkload(), operations=10, seed=0
        )
        assert check_commutativity(system) == []

    def test_orset_clean(self):
        system = random_op_execution(
            OpORSet(), ORSetWorkload(), operations=12, seed=1
        )
        assert check_commutativity(system) == []

    def test_rga_clean(self):
        system = random_op_execution(
            OpRGA(), RGAWorkload(), operations=12, seed=2
        )
        assert check_commutativity(system) == []

    def test_wooki_clean(self):
        system = random_op_execution(
            OpWooki(), WookiWorkload(), operations=12, seed=3
        )
        assert check_commutativity(system) == []

    def test_broken_crdt_detected(self):
        system = OpBasedSystem(BrokenMaxRegister(), replicas=("r1", "r2"))
        system.invoke("r1", "write", ("a",))
        system.invoke("r2", "write", ("b",))
        system.deliver_all()
        violations = check_commutativity(system)
        assert violations
        text = str(violations[0])
        assert "do not commute" in text

    def test_sequential_execution_trivially_clean(self):
        # No concurrency → nothing to check.
        system = OpBasedSystem(BrokenMaxRegister(), replicas=("r1", "r2"))
        system.invoke("r1", "write", ("a",))
        system.deliver_all()
        system.invoke("r2", "write", ("b",))
        system.deliver_all()
        assert check_commutativity(system) == []


class TestSampledStates:
    def test_includes_initial_and_final(self):
        system = OpBasedSystem(OpCounter(), replicas=("r1", "r2"))
        system.invoke("r1", "inc")
        system.deliver_all()
        states = sampled_states(system)
        assert 0 in states and 1 in states
