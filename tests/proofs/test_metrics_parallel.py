"""Serial vs parallel metrics agreement (the observability contract).

The metrics layer splits instruments into two contracts
(``docs/observability.md``): *deterministic* instruments describe the
verification outcome and must be bit-for-bit identical between a serial
run and any ``--jobs N`` run — mirroring the verdict-equality suite in
``test_parallel.py`` — while *work* instruments describe machinery cost
and may exceed serial totals under frontier splitting (workers re-explore
subtree-shared states).  This suite pins both directions: equality for
the deterministic section, and ≥-serial sanity for the work section.
"""

import pytest

from repro.obs import Instrumentation, deterministic_totals
from repro.proofs.exhaustive import (
    exhaustive_verify,
    exhaustive_verify_state,
)
from repro.proofs.parallel import standard_scopes, verify_scopes_parallel
from repro.proofs.report import verify_entry
from repro.proofs.parallel import verify_entries_parallel
from repro.proofs.registry import ALL_ENTRIES

SCOPES = standard_scopes()
JOBS = 4


def _serial_totals(scopes):
    ins = Instrumentation.on()
    for entry, programs, max_gossips in scopes:
        if entry.kind == "OB":
            exhaustive_verify(entry, programs, instrumentation=ins)
        else:
            exhaustive_verify_state(
                entry, programs, max_gossips=max_gossips,
                instrumentation=ins,
            )
    return ins


@pytest.mark.parametrize(
    "scope", SCOPES, ids=[entry.name for entry, _, _ in SCOPES]
)
def test_entry_deterministic_totals_match(scope):
    """Every registry entry: serial ≡ --jobs 4 deterministic counters."""
    serial = _serial_totals([scope])
    parallel = Instrumentation.on()
    verify_scopes_parallel([scope], jobs=JOBS, instrumentation=parallel)
    assert deterministic_totals(parallel.metrics.snapshot()) \
        == deterministic_totals(serial.metrics.snapshot())


def test_suite_deterministic_totals_match_whole_tree_path():
    """All scopes at once (≥ jobs ⇒ whole-tree tasks): still identical."""
    serial = _serial_totals(SCOPES)
    parallel = Instrumentation.on()
    verify_scopes_parallel(SCOPES, jobs=2, instrumentation=parallel)
    assert deterministic_totals(parallel.metrics.snapshot()) \
        == deterministic_totals(serial.metrics.snapshot())


def test_work_counters_at_least_serial():
    """Frontier splitting may re-explore states but never skips work."""
    scope = next(
        (entry, programs, gossips)
        for entry, programs, gossips in SCOPES if entry.name == "OR-Set"
    )
    serial = _serial_totals([scope])
    parallel = Instrumentation.on()
    verify_scopes_parallel([scope], jobs=JOBS, instrumentation=parallel)
    serial_instruments = serial.metrics.snapshot()["instruments"]
    parallel_instruments = parallel.metrics.snapshot()["instruments"]
    for key in ("explore.states_visited{kind=op}",
                "check.checks{entry=OR-Set}"):
        assert parallel_instruments[key]["value"] \
            >= serial_instruments[key]["value"]


def test_table_deterministic_totals_match():
    """The randomized-harness path: serial and parallel table runs agree."""
    entries = ALL_ENTRIES[:4]
    serial = Instrumentation.on()
    for entry in entries:
        serial.record_verification(
            verify_entry(entry, executions=2, operations=6)
        )
    parallel = Instrumentation.on()
    results = verify_entries_parallel(
        entries, executions=2, operations=6, jobs=JOBS,
        instrumentation=parallel,
    )
    for result in results:
        parallel.record_verification(result)
    assert deterministic_totals(parallel.metrics.snapshot()) \
        == deterministic_totals(serial.metrics.snapshot())
