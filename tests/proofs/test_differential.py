"""Differential (lock-step) testing against the sequential specification."""

import pytest

from repro.proofs.differential import run_differential
from repro.proofs.mutants import AscendingRGA
from repro.proofs.registry import ALL_ENTRIES, entry_by_name


@pytest.mark.parametrize("entry", ALL_ENTRIES, ids=[e.name for e in ALL_ENTRIES])
@pytest.mark.parametrize("seed", [1, 2])
def test_synchronous_runs_match_spec(entry, seed):
    report = run_differential(entry, operations=15, seed=seed)
    assert report.ok, report.mismatches
    assert report.operations == 15


def test_mutant_detected_differentially():
    # The ascending-sibling RGA diverges from Spec(RGA) even without
    # concurrency conflicts?  No — with total synchrony and single-parent
    # inserts it may agree; use enough ops so sibling conflicts occur.
    from dataclasses import replace

    entry = replace(entry_by_name("RGA"), make_crdt=AscendingRGA)
    reports = [
        run_differential(entry, operations=25, seed=seed) for seed in range(5)
    ]
    assert any(not r.ok for r in reports)


def test_report_caps_mismatches():
    from repro.proofs.differential import DifferentialReport

    report = DifferentialReport("x")
    for i in range(9):
        report.record(str(i))
    assert len(report.mismatches) == 5 and not report.ok
