"""3-replica exhaustive scopes — feasible only with the fast engine.

These scopes were out of reach for the naive raw-interleaving explorer
(the 6-operation OR-Set program alone has billions of interleavings once
deliveries are counted); the sleep-set engine completes them in tens of
seconds, turning "every 2-replica interleaving" into "every 3-replica
interleaving" as the small-scope proof statement.  Marked ``slow`` and
excluded from the default run (see ``addopts`` in pyproject.toml); run
with ``pytest -m slow``.
"""

import pytest

from repro.core.sentinels import ROOT
from repro.proofs.exhaustive import exhaustive_verify
from repro.proofs.registry import entry_by_name

pytestmark = pytest.mark.slow


def test_orset_three_replicas_conflict_heavy():
    entry = entry_by_name("OR-Set")
    programs = {
        "r1": [("add", ("a",)), ("remove", ("a",)), ("read", ())],
        "r2": [("add", ("a",)), ("read", ())],
        "r3": [("add", ("a",))],
    }
    result = exhaustive_verify(entry, programs)
    assert result.ok, result.failures
    assert result.configurations > 1000
    # Completed exhaustively: the cap never fired.
    assert not result.stats.capped
    assert result.stats.branches_pruned > result.stats.states_visited


def test_rga_three_replicas_conflict_heavy():
    entry = entry_by_name("RGA")
    programs = {
        "r1": [("addAfter", (ROOT, "a")), ("read", ())],
        "r2": [("addAfter", (ROOT, "b")), ("read", ())],
        "r3": [("addAfter", (ROOT, "c")), ("read", ())],
    }
    result = exhaustive_verify(entry, programs)
    assert result.ok, result.failures
    assert result.configurations > 1000
    assert not result.stats.capped
