"""The compositional per-object proof rule (Sec. 5, Thms 5.3/5.5)."""

import pytest

from repro.proofs.compositional import (
    SIDE_CONDITION_LIMIT,
    Store,
    check_side_condition,
    composed_table_entry,
    make_store_system,
    parse_store_spec,
    product_verify_store,
    project_programs,
    store_programs,
    timestamp_dominance_violation,
    verify_store,
)
from repro.proofs.exhaustive import standard_programs
from repro.proofs.registry import entry_by_name
from repro.scenarios import fig10_two_rgas


def tiny_programs(store, ops_per_replica=1):
    """One (or few) op(s) per object per replica — keeps the product
    oracle tractable."""
    programs = {"r1": [], "r2": []}
    for obj, entry in store.objects:
        per_object = standard_programs(entry)
        for replica in programs:
            for op in per_object.get(replica, [])[:ops_per_replica]:
                programs[replica].append((op[0], op[1], obj))
    return programs


class TestParseStoreSpec:
    def test_single_objects_bare_names(self):
        store = parse_store_spec("counter:1,orset:1")
        assert store.names == ["counter", "or_set"]
        assert store.entry("counter").name == "Counter"
        assert store.entry("or_set").name == "OR-Set"
        assert store.shared_timestamps

    def test_multiples_numbered(self):
        store = parse_store_spec("counter:2,rga:1")
        assert store.names == ["counter1", "counter2", "rga"]

    def test_count_defaults_to_one(self):
        assert parse_store_spec("counter").names == ["counter"]

    def test_lax_entry_matching(self):
        for spelling in ("orset", "or_set", "OR-Set"):
            assert parse_store_spec(spelling).entry("or_set").name == "OR-Set"

    def test_unknown_object_lists_available(self):
        with pytest.raises(ValueError, match="available:.*or_set"):
            parse_store_spec("counter:1,nope:2")

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            parse_store_spec("counter:0")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="no objects"):
            parse_store_spec(" , ")

    def test_spec_string_canonical(self):
        store = parse_store_spec("ORSET:1, counter:2")
        assert store.spec_string() == "or_set:1,counter:2"

    def test_independent_clocks(self):
        store = parse_store_spec("counter:2", shared_timestamps=False)
        assert not store.shared_timestamps
        assert "⊗" in store.describe() and "⊗ts" not in store.describe()


class TestStorePrograms:
    def test_programs_tag_objects(self):
        store = parse_store_spec("counter:1,orset:1")
        programs = store_programs(store)
        objs = {op[2] for ops in programs.values() for op in ops}
        assert objs == {"counter", "or_set"}

    def test_projection_round_trip(self):
        store = parse_store_spec("counter:1,orset:1")
        programs = store_programs(store)
        for obj, entry in store.objects:
            projected = project_programs(programs, obj)
            assert projected == {
                r: [(op[0], op[1]) for op in ops]
                for r, ops in standard_programs(entry).items()
                if ops
            }

    def test_make_store_system_shared_clock(self):
        store = parse_store_spec("counter:1,orset:1")
        system = make_store_system(store, replicas=("r1", "r2"))
        a = system.invoke("r1", "inc", (), obj="counter")
        b = system.invoke("r1", "add", ("a",), obj="or_set")
        assert a.ts < b.ts


class TestVerifyStore:
    def test_compositional_ok(self):
        store = parse_store_spec("counter:1,orset:1")
        result = verify_store(store)
        assert result.ok, result.failures
        assert result.mode == "compositional"
        assert set(result.objects) == {"counter", "or_set"}
        assert all(r.ok for r in result.objects.values())
        assert result.side_condition_ok
        assert result.side_condition_checks == SIDE_CONDITION_LIMIT
        assert result.combine_failures == 0
        assert result.configurations == sum(
            r.configurations for r in result.objects.values()
        )

    def test_identical_objects_share_one_verification(self):
        store = parse_store_spec("counter:2")
        result = verify_store(store)
        assert result.ok
        assert result.objects["counter1"] is result.objects["counter2"]

    def test_parallel_matches_serial(self):
        store = parse_store_spec("counter:1,orset:1")
        serial = verify_store(store)
        parallel = verify_store(store, jobs=2)
        assert parallel.ok == serial.ok
        assert {
            obj: r.configurations for obj, r in parallel.objects.items()
        } == {
            obj: r.configurations for obj, r in serial.objects.items()
        }
        assert parallel.side_condition_checks == serial.side_condition_checks

    def test_product_fallback_for_independent_clocks(self):
        store = parse_store_spec("counter:1", shared_timestamps=False)
        result = verify_store(store)
        assert result.mode == "product"
        assert result.ok
        assert result.product is not None
        assert result.configurations == result.product.configurations

    def test_side_condition_can_be_disabled(self):
        store = parse_store_spec("counter:1,orset:1")
        result = verify_store(store, side_condition_limit=0)
        assert result.ok and result.side_condition_checks == 0


class TestSideCondition:
    def test_ts_store_clean(self):
        store = parse_store_spec("counter:1,lww_register:1")
        ok, checks, failures, cex, messages = check_side_condition(
            store, tiny_programs(store), limit=10
        )
        assert ok and checks == 10 and failures == 0
        assert cex is None and messages == []

    def test_fig10_independent_clock_dominance_violation(self):
        history = fig10_two_rgas(shared_timestamps=False).history
        assert timestamp_dominance_violation(history) is not None

    def test_fig10_shared_clock_dominates(self):
        history = fig10_two_rgas(shared_timestamps=True).history
        assert timestamp_dominance_violation(history) is None


class TestComposedTableEntry:
    def test_row_shape(self):
        row = composed_table_entry()
        assert row.name == "Composed ⊗ts store"
        assert row.lin_class == "⊗ts"
        assert row.ralin_ok and row.verified
        assert row.executions > 0 and row.operations > 0


class TestProductOracle:
    def test_product_small_store_ok(self):
        store = parse_store_spec("counter:1,orset:1")
        result = product_verify_store(store, tiny_programs(store))
        assert result.ok, result.failures
        assert result.configurations > 1
        assert result.stats is not None and result.stats.wall_time > 0
