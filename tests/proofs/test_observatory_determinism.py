"""The observatory must not perturb verification (PR-3 contract).

Heartbeats, journal events, and phase profiles are *work artifacts*:
they describe the machinery, never the verdicts.  This suite pins the
two load-bearing guarantees:

* serial and work-stealing runs produce byte-identical
  ``deterministic_totals`` even with the full observatory switched on
  (live progress at every beat, heartbeat log, journal, profiler), and
* with everything off the engine's hot loop pays a single attribute
  check per hook — the ``NULL_INSTRUMENTATION`` pattern.
"""

import io
import json

from repro.obs import (
    HeartbeatEmitter,
    Instrumentation,
    NULL_INSTRUMENTATION,
    ProgressMonitor,
    deterministic_totals,
)
from repro.proofs.exhaustive import (
    exhaustive_verify,
    exhaustive_verify_state,
)
from repro.proofs.parallel import standard_scopes
from repro.proofs.steal import verify_scopes_steal

SCOPES = [
    scope for scope in standard_scopes()
    if scope[0].name in ("Counter", "OR-Set")
]


def _serial_with_observatory(scopes, log_path):
    ins = Instrumentation.on()
    monitor = ProgressMonitor(interval=0.0, stream=io.StringIO(),
                              log_path=log_path)
    emitter = HeartbeatEmitter(worker="w0", sink=monitor.ingest,
                               interval=0.0)
    try:
        for entry, programs, max_gossips in scopes:
            if entry.kind == "OB":
                exhaustive_verify(entry, programs, instrumentation=ins,
                                  heartbeat=emitter)
            else:
                exhaustive_verify_state(
                    entry, programs, max_gossips=max_gossips,
                    instrumentation=ins, heartbeat=emitter,
                )
    finally:
        monitor.close()
    return ins


def test_serial_vs_steal_pool_with_observatory_on(tmp_path):
    serial = _serial_with_observatory(
        SCOPES, str(tmp_path / "hb-serial.jsonl"))
    pooled = Instrumentation.on()
    verify_scopes_steal(
        SCOPES, jobs=2, oversubscribe=True, force_pool=True,
        instrumentation=pooled,
        progress=0.0, progress_stream=io.StringIO(),
        heartbeat_log=str(tmp_path / "hb-pool.jsonl"),
    )
    serial_totals = deterministic_totals(serial.metrics.snapshot())
    pooled_totals = deterministic_totals(pooled.metrics.snapshot())
    # Byte-identical, not merely ==: the artifact section must render
    # the same characters in both runs.
    assert json.dumps(pooled_totals, sort_keys=True) \
        == json.dumps(serial_totals, sort_keys=True)
    assert serial_totals  # non-vacuous: verdict counters are present


def test_observatory_artifacts_stay_out_of_deterministic_totals(tmp_path):
    ins = _serial_with_observatory(SCOPES[:1], str(tmp_path / "hb.jsonl"))
    assert len(ins.journal) > 0  # journal saw lifecycle events
    assert ins.profile  # profiler attributed engine time
    for key in deterministic_totals(ins.metrics.snapshot()):
        assert not key.startswith(("profile.", "explore."))


class TestDisabledPath:
    def test_null_handle_has_no_observatory(self):
        assert NULL_INSTRUMENTATION.journal is None
        assert NULL_INSTRUMENTATION.profile is None
        assert NULL_INSTRUMENTATION.enabled is False
        # journal_event on the null handle is a no-op, not an error.
        NULL_INSTRUMENTATION.journal_event("scope.start", entry="X")

    @staticmethod
    def _engine(**kwargs):
        from repro.runtime.explore_engine import build_engine
        from repro.runtime.system import OpBasedSystem
        from repro.proofs.registry import entry_by_name
        from repro.proofs.exhaustive import standard_programs

        entry = entry_by_name("Counter")
        programs = standard_programs(entry)

        def make_system():
            return OpBasedSystem(entry.make_crdt(),
                                 replicas=sorted(programs))

        return build_engine("op", make_system, programs,
                            lambda *args: None, **kwargs)

    def test_engine_holds_none_hooks_when_disabled(self):
        engine = self._engine()
        assert engine.heartbeat is None
        assert engine.profile is None
        assert engine.journal is None

    def test_profiled_domain_only_wraps_when_profiling(self):
        from repro.runtime.explore_engine import _ProfiledDomain
        from repro.obs.profile import PhaseProfiler

        assert not isinstance(self._engine().domain, _ProfiledDomain)
        profiled = self._engine(profile=PhaseProfiler())
        assert isinstance(profiled.domain, _ProfiledDomain)
