"""Shared helpers for the test suite."""

import pytest

from repro.core.history import History
from repro.core.label import Label
from repro.core.timestamp import BOTTOM, Timestamp


def lbl(method, *args, ret=None, ts=None, obj=None, origin=None):
    """Terse label constructor for hand-built histories."""
    return Label(
        method,
        tuple(args),
        ret=ret,
        ts=ts if ts is not None else BOTTOM,
        obj=obj,
        origin=origin,
    )


def chain_history(*labels):
    """A totally-ordered (sequential) history over ``labels``."""
    edges = [
        (labels[i], labels[j])
        for i in range(len(labels))
        for j in range(i + 1, len(labels))
    ]
    return History(labels, edges)


def ts(counter, replica="r1"):
    return Timestamp(counter, replica)


@pytest.fixture
def make_label():
    return lbl


@pytest.fixture
def make_chain():
    return chain_history
