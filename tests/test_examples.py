"""Every example script runs cleanly (guards against bit-rot).

The heavy scripts get trimmed via environment-free subprocess runs; each
must exit 0 and print its headline evidence.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", "RA-linearizable"),
    ("collaborative_editing.py", "timestamp-order RA-linearization: OK"),
    ("shopping_cart.py", "impossible"),
    ("composed_objects.py", "composed history RA-linearizable: True"),
    ("client_verification.py", "HOLDS"),
    ("state_based_gossip.py", "fold oracle : OK"),
    ("custom_crdt.py", "enable wins"),
    ("debugging_workflow.py", "caught"),
    ("regional_metrics.py", "RA-linearizable"),
]


@pytest.mark.parametrize("script,needle", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, needle):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert needle in result.stdout


def test_verify_figure12_script():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "verify_figure12.py"), "2", "6"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "RGA" in result.stdout and "yes" in result.stdout
