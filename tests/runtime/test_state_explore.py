"""The bounded state-based explorer."""

from repro.crdts import SBGSet, SBPNCounter
from repro.runtime import StateBasedSystem
from repro.runtime.state_explore import explore_state_programs


def make(crdt_factory, replicas=("r1", "r2")):
    return lambda: StateBasedSystem(crdt_factory(), replicas=replicas)


class TestExploreStatePrograms:
    def test_no_gossip_keeps_replicas_isolated(self):
        programs = {
            "r1": [("inc", ()), ("read", ())],
            "r2": [("read", ())],
        }
        outcomes = set()

        def visit(system, returns):
            outcomes.add((returns["r1"][1], returns["r2"][0]))

        explore_state_programs(
            make(SBPNCounter), programs, visit, max_gossips=0
        )
        # r1 always reads its own inc... unless the read ran first.
        assert outcomes == {(1, 0)}

    def test_gossip_propagates_state(self):
        programs = {
            "r1": [("inc", ())],
            "r2": [("read", ())],
        }
        outcomes = set()

        def visit(system, returns):
            outcomes.add(returns["r2"][0])

        explore_state_programs(
            make(SBPNCounter), programs, visit, max_gossips=1
        )
        assert outcomes == {0, 1}

    def test_counts_configurations(self):
        programs = {"r1": [("add", ("a",))], "r2": [("add", ("b",))]}
        visited = explore_state_programs(
            make(SBGSet), programs, lambda s, r: None, max_gossips=1
        )
        assert visited > 2

    def test_max_configurations(self):
        programs = {"r1": [("add", ("a",))], "r2": [("add", ("b",))]}
        visited = explore_state_programs(
            make(SBGSet), programs, lambda s, r: None,
            max_gossips=2, max_configurations=4,
        )
        assert visited == 4

    def test_partial_propagation_configs_visited(self):
        # With budget 2 both full and partial propagation states appear.
        programs = {
            "r1": [("add", ("a",)), ("read", ())],
            "r2": [("add", ("b",)), ("read", ())],
        }
        reads = set()

        def visit(system, returns):
            reads.add((returns["r1"][1], returns["r2"][1]))

        explore_state_programs(make(SBGSet), programs, visit, max_gossips=2)
        assert (frozenset({"a"}), frozenset({"b"})) in reads      # isolated
        assert any("a" in x and "b" in x for x, _ in reads)       # merged
