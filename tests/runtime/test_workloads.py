"""Workload generators: every proposal must satisfy the preconditions."""

import random

import pytest

from repro.core.errors import PreconditionViolation
from repro.proofs.registry import ALL_ENTRIES
from repro.runtime import OpBasedSystem, StateBasedSystem


@pytest.mark.parametrize(
    "entry", ALL_ENTRIES, ids=[e.name for e in ALL_ENTRIES]
)
def test_proposals_always_satisfy_preconditions(entry):
    rng = random.Random(42)
    crdt = entry.make_crdt()
    workload = entry.make_workload()
    if entry.kind == "OB":
        system = OpBasedSystem(crdt, replicas=("r1", "r2"))
    else:
        system = StateBasedSystem(crdt, replicas=("r1", "r2"))
    issued = 0
    for _ in range(200):
        replica = rng.choice(("r1", "r2"))
        proposal = workload.propose(system.state(replica), rng)
        if proposal is None:
            continue
        method, args = proposal
        system.invoke(replica, method, args)
        issued += 1
        if entry.kind == "OB" and rng.random() < 0.3:
            for label in system.deliverable(replica):
                system.deliver(replica, label)
        if entry.kind == "SB" and rng.random() < 0.3:
            other = "r2" if replica == "r1" else "r1"
            system.gossip(replica, other)
    assert issued > 50


@pytest.mark.parametrize(
    "entry", ALL_ENTRIES, ids=[e.name for e in ALL_ENTRIES]
)
def test_workload_produces_reads_and_updates(entry):
    rng = random.Random(7)
    crdt = entry.make_crdt()
    workload = entry.make_workload()
    if entry.kind == "OB":
        system = OpBasedSystem(crdt, replicas=("r1",))
    else:
        system = StateBasedSystem(crdt, replicas=("r1",))
    methods = set()
    for _ in range(150):
        proposal = workload.propose(system.state("r1"), rng)
        if proposal is None:
            continue
        method, args = proposal
        methods.add(method)
        system.invoke("r1", method, args)
    assert "read" in methods
    assert len(methods) >= 2
