"""Fingerprint interning: stable encoding, collision checks, disk spill.

The store's contract is exactness: replacing raw fingerprint sets with
digest sets must never merge two distinct configurations (collision
check) nor split one configuration in two (process-stable encoding).
The engine-level guarantee is differential — explorations run with and
without the store count the same configurations.
"""

import pickle
import subprocess
import sys

import pytest

from repro.core.freeze import FrozenDict
from repro.core.timestamp import BOTTOM, Timestamp
from repro.proofs.exhaustive import exhaustive_verify, standard_programs
from repro.proofs.registry import ALL_ENTRIES
from repro.runtime.fp_store import (
    FingerprintCollisionError,
    FingerprintStore,
    FPStoreStats,
    SpillMap,
    SpillSet,
    stable_encode,
)
from repro.runtime.symmetry import CanonFP

OB_ENTRIES = [e for e in ALL_ENTRIES if e.kind == "OB"]

SAMPLE = (
    ("replica", 3, (True, 1.5, None)),
    frozenset({("a", 1), ("b", 2), BOTTOM}),
    FrozenDict({"x": Timestamp(1, "r1"), "y": (2, "z")}),
    CanonFP((("s", "r1"), ("i", 4))),
)


class TestStableEncode:
    def test_equal_values_equal_encodings(self):
        a = stable_encode(SAMPLE)
        b = stable_encode(
            (
                ("replica", 3, (True, 1.5, None)),
                frozenset({BOTTOM, ("b", 2), ("a", 1)}),
                FrozenDict({"y": (2, "z"), "x": Timestamp(1, "r1")}),
                CanonFP((("s", "r1"), ("i", 4))),
            )
        )
        assert a == b

    def test_distinct_values_distinct_encodings(self):
        values = [
            (), (0,), ("0",), (0, 0), ((0,),), frozenset(), frozenset({0}),
            {"a": 1}, {"a": 2}, {"b": 1}, None, BOTTOM, 0, "x", b"x", 0.5,
            CanonFP(("k",)), ("k",),
        ]
        encodings = [stable_encode(v) for v in values]
        assert len(set(encodings)) == len(encodings)

    def test_numeric_equality_shares_encoding(self):
        # The plain-set dedup path treats True == 1 == 1.0; the digest
        # path must agree or configurations would double-count.
        assert stable_encode(1) == stable_encode(True) == stable_encode(1.0)
        assert stable_encode(0) == stable_encode(False)
        assert stable_encode(1) != stable_encode(1.5)

    def test_container_sorting_ignores_hash_order(self):
        items = frozenset(f"item-{i}" for i in range(50))
        rebuilt = frozenset(sorted(items, reverse=True))
        assert stable_encode(items) == stable_encode(rebuilt)

    def test_cross_process_stability(self):
        """Encodings do not depend on the interpreter's hash seed."""
        script = (
            "from repro.runtime.fp_store import stable_encode\n"
            "from repro.core.timestamp import Timestamp\n"
            "v = (frozenset({'a', 'b', 'c', ('n', 1)}),"
            "     {'k': Timestamp(2, 'r2')}, 7)\n"
            "import sys; sys.stdout.write(stable_encode(v).hex())\n"
        )
        outs = set()
        for seed in ("0", "1", "random"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
            )
            outs.add(proc.stdout)
        assert len(outs) == 1

    def test_memo_reuses_container_encodings(self):
        memo = {}
        part = ("r1", frozenset({1, 2, 3}))
        first = stable_encode(part, memo)
        assert stable_encode(part, memo) == first
        assert id(part) in memo


class TestFingerprintStore:
    def test_intern_is_deterministic_and_counted(self):
        store = FingerprintStore()
        d1 = store.intern(SAMPLE)
        d2 = store.intern(SAMPLE)
        assert d1 == d2 and len(d1) == 16
        assert store.stats.lookups == 2
        assert store.stats.hits == 1
        assert store.stats.unique == 1

    def test_distinct_fingerprints_distinct_digests(self):
        store = FingerprintStore()
        digests = {store.intern(("config", i)) for i in range(200)}
        assert len(digests) == 200

    def test_collision_raises(self):
        # A 1-byte digest collides within ~16·sqrt(256) fingerprints;
        # the ledger must detect it rather than silently merge.
        store = FingerprintStore(digest_size=1)
        with pytest.raises(FingerprintCollisionError):
            for i in range(10_000):
                store.intern(("config", i))

    def test_eviction_without_spill_counts_unchecked(self):
        store = FingerprintStore(memory_limit=4)
        for i in range(10):
            store.intern(("config", i))
        assert store.stats.evictions > 0
        store.intern(("config", 0))  # evicted: cannot re-verify
        assert store.stats.unchecked_hits >= 1

    def test_eviction_with_spill_stays_exact(self, tmp_path):
        with FingerprintStore(spill_dir=str(tmp_path), memory_limit=4) \
                as store:
            first = [store.intern(("config", i)) for i in range(200)]
            again = [store.intern(("config", i)) for i in range(200)]
            assert first == again
            assert store.stats.evictions > 0
            assert store.stats.unchecked_hits == 0

    def test_cross_store_agreement(self):
        # Two stores (two worker processes in spirit) must produce equal
        # digests for equal fingerprints — the merge unions their sets.
        a, b = FingerprintStore(), FingerprintStore()
        assert [a.intern(("c", i)) for i in range(50)] == \
               [b.intern(("c", i)) for i in range(50)]


class TestSpillTiers:
    def test_spill_set_roundtrip(self, tmp_path):
        store = FingerprintStore(spill_dir=str(tmp_path), memory_limit=8)
        spill = store.visited_set()
        assert isinstance(spill, SpillSet)
        digests = [store.intern(("v", i)) for i in range(100)]
        for digest in digests:
            spill.add(digest)
            spill.add(digest)  # idempotent
        assert len(spill) == 100
        assert all(d in spill for d in digests)
        assert store.intern(("v", "missing")) not in spill
        assert set(spill) == set(digests)
        store.close()

    def test_spill_map_roundtrip(self, tmp_path):
        store = FingerprintStore(spill_dir=str(tmp_path), memory_limit=4)
        table = store.expanded_map()
        assert isinstance(table, SpillMap)
        digests = [store.intern(("e", i)) for i in range(50)]
        for i, digest in enumerate(digests):
            # Engine pattern: setdefault, then append before the next
            # setdefault call.
            table.setdefault(digest, []).append(frozenset({("inv", "r", i)}))
        for i, digest in enumerate(digests):
            recorded = table.setdefault(digest, [])
            assert recorded == [frozenset({("inv", "r", i)})]
        store.close()

    def test_scratch_file_invisible_while_running(self, tmp_path):
        # The scratch sqlite file is unlinked right after connect: the
        # store keeps working through the open descriptor, and the spill
        # directory never shows (or accumulates) fp-store files.
        store = FingerprintStore(spill_dir=str(tmp_path), memory_limit=4)
        digests = [store.intern(("x", i)) for i in range(50)]
        assert digests == [store.intern(("x", i)) for i in range(50)]
        assert not list(tmp_path.iterdir())
        store.close()
        assert not list(tmp_path.iterdir())

    def test_killed_worker_leaves_no_scratch_files(self, tmp_path):
        # Abnormal worker exit (SIGKILL mid-exploration) must not orphan
        # scratch files in --spill DIR: the unlink-after-connect pattern
        # hands cleanup to the kernel, not to a close() that never runs.
        script = (
            "import os, sys\n"
            "from repro.runtime.fp_store import FingerprintStore\n"
            "store = FingerprintStore(spill_dir=sys.argv[1], memory_limit=4)\n"
            "for i in range(100):\n"
            "    store.intern(('kill', i))\n"
            "sys.stdout.write('ready\\n')\n"
            "sys.stdout.flush()\n"
            "os.kill(os.getpid(), 9)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            capture_output=True, text=True, timeout=60,
            env={"PYTHONPATH": "src"},
        )
        assert proc.stdout.strip() == "ready"
        assert proc.returncode != 0  # died on SIGKILL, close() never ran
        assert not list(tmp_path.iterdir())


class TestStats:
    def test_merge_sums_counters(self):
        a = FPStoreStats(lookups=10, hits=4, unique=6, evictions=1,
                         spilled=2, unchecked_hits=3)
        b = FPStoreStats(lookups=5, hits=1, unique=4)
        a.merge(b)
        assert a.lookups == 15 and a.hits == 5 and a.unique == 10
        assert a.hit_ratio == 5 / 15
        assert a.as_dict()["spilled"] == 2

    def test_canonfp_enc_cache_not_pickled(self):
        fp = CanonFP((("s", "r1"),))
        stable_encode(fp)
        assert fp._enc is not None
        clone = pickle.loads(pickle.dumps(fp))
        assert clone == fp
        assert clone._enc is None


class TestEngineEquality:
    """Explorations through the store count exactly as without it."""

    @pytest.mark.parametrize(
        "entry", OB_ENTRIES, ids=lambda entry: entry.name
    )
    def test_spill_matches_plain(self, entry, tmp_path):
        programs = standard_programs(entry)
        plain = exhaustive_verify(entry, programs)
        spilled = exhaustive_verify(entry, programs, spill=str(tmp_path))
        assert spilled.ok == plain.ok
        assert spilled.configurations == plain.configurations
        assert spilled.fp_store is not None
        assert spilled.fp_store.lookups > 0

    def test_spill_matches_plain_under_symmetry(self, tmp_path):
        entry = next(e for e in OB_ENTRIES if e.name == "Counter")
        programs = {
            "r1": [("inc", ()), ("read", ())],
            "r2": [("inc", ()), ("read", ())],
        }
        plain = exhaustive_verify(entry, programs, symmetry=True)
        spilled = exhaustive_verify(entry, programs, symmetry=True,
                                    spill=str(tmp_path))
        assert spilled.configurations == plain.configurations

    def test_tiny_memory_limit_stays_exact(self, tmp_path, monkeypatch):
        # Force every record through the eviction/disk path: exploration
        # must still count exactly as the in-memory run.
        entry = next(e for e in OB_ENTRIES if e.name == "Counter")
        programs = standard_programs(entry)
        plain = exhaustive_verify(entry, programs)
        monkeypatch.setattr(
            "repro.proofs.exhaustive.FingerprintStore",
            lambda spill_dir: FingerprintStore(
                spill_dir=spill_dir, memory_limit=16
            ),
        )
        spilled = exhaustive_verify(entry, programs, spill=str(tmp_path))
        assert spilled.configurations == plain.configurations
        assert spilled.fp_store.evictions > 0
