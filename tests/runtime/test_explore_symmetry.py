"""Replica-symmetry reduction: differential oracle, pinning, orbit keys.

The load-bearing guarantee mirrors PR 1's POR story: with orbit dedup on,
the engine must still cover *every* orbit of the naive explorer's
configuration set — :func:`repro.runtime.op_orbit_key` /
:func:`state_orbit_key` make "same orbit" precise (the order-insensitive
configuration key, canonicalized to its least image under the replica-
permutation group).  Three assertions per entry:

* every configuration the symmetric engine visits is one the naive
  explorer reaches (no phantom states),
* the visited orbit-key set equals the naive one (every orbit of the
  partition is represented), and
* the symmetric engine never visits more configurations than the
  non-symmetric engine (the reduction only merges).

Entries whose semantics order concurrently-minted timestamps
(last-writer-wins, Wooki) set ``CRDTEntry.symmetry = False``: Lamport
timestamps tie-break on the replica string, so replica renaming is not an
automorphism of their executions — the suite pins that list and checks
the hatched entries against the naive oracle with the reduction off.
"""

import pickle

import pytest

from repro.core.sentinels import BEGIN, END, ROOT
from repro.proofs.registry import ALL_ENTRIES, entry_by_name
from repro.runtime import (
    ExploreStats,
    OpBasedSystem,
    StateBasedSystem,
    build_group,
    canon_key,
    explore_op_programs,
    explore_op_programs_naive,
    explore_state_programs,
    explore_state_programs_naive,
    op_config_key,
    op_orbit_key,
    replica_classes,
    state_config_key,
    state_orbit_key,
)
from repro.runtime.symmetry import CanonFP, SymmetryGroup, rename_transition

SYM_ENTRIES = [e for e in ALL_ENTRIES if e.symmetry]
HATCHED_ENTRIES = [e for e in ALL_ENTRIES if not e.symmetry]


def symmetric_programs(entry):
    """Identical per-replica programs (so no replica is pinned)."""
    name = entry.name
    if "Counter" in name:
        program = [("inc", ()), ("read", ())]
    elif "OR-Set" in name:
        program = [("add", ("a",)), ("remove", ("a",))]
    elif name in ("2P-Set (op)", "2P-Set", "G-Set", "LWW-Element Set"):
        program = [("add", ("a",)), ("read", ())]
    elif "Register" in name or "Reg." in name:
        program = [("write", ("a",)), ("read", ())]
    elif name == "RGA":
        program = [("addAfter", (ROOT, "a")), ("read", ())]
    elif name == "RGA-addAt":
        program = [("addAt", ("a", 0)), ("read", ())]
    elif name == "Wooki":
        program = [("addBetween", (BEGIN, "a", END)), ("read", ())]
    else:
        raise KeyError(name)
    return {"r1": list(program), "r2": list(program)}


def _make_system(entry, programs):
    if entry.kind == "OB":
        return lambda: OpBasedSystem(
            entry.make_crdt(), replicas=sorted(programs)
        )
    return lambda: StateBasedSystem(
        entry.make_crdt(), replicas=sorted(programs)
    )


def _run(entry, programs, **kwargs):
    """(visit count, config-key set, orbit-key set, stats) of one run."""
    configs, orbits = set(), set()
    count = 0
    if entry.kind == "OB":
        orbit_key, config_key = op_orbit_key, op_config_key
        explore = explore_op_programs
    else:
        orbit_key, config_key = state_orbit_key, state_config_key
        explore = explore_state_programs
        kwargs.setdefault("max_gossips", 2)

    def visit(system, returns):
        nonlocal count
        count += 1
        configs.add(config_key(system, returns))
        orbits.add(orbit_key(system, returns, programs))

    stats = kwargs.setdefault("stats", ExploreStats())
    explore(_make_system(entry, programs), programs, visit, **kwargs)
    return count, configs, orbits, stats


def _run_naive(entry, programs, **kwargs):
    configs, orbits = set(), set()
    if entry.kind == "OB":
        orbit_key, config_key = op_orbit_key, op_config_key
        explore = explore_op_programs_naive
    else:
        orbit_key, config_key = state_orbit_key, state_config_key
        explore = explore_state_programs_naive
        kwargs.setdefault("max_gossips", 2)

    def visit(system, returns):
        configs.add(config_key(system, returns))
        orbits.add(orbit_key(system, returns, programs))

    explore(_make_system(entry, programs), programs, visit, **kwargs)
    return configs, orbits


# ----------------------------------------------------------------------
# Differential oracle — symmetric entries cover every naive orbit
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "entry", SYM_ENTRIES, ids=[e.name for e in SYM_ENTRIES]
)
def test_symmetry_covers_naive_orbits(entry):
    programs = symmetric_programs(entry)
    naive_configs, naive_orbits = _run_naive(entry, programs)
    count, configs, orbits, stats = _run(entry, programs, symmetry=True)
    nosym_count, nosym_configs, _, _ = _run(entry, programs, symmetry=False)
    assert stats.symmetry_group == 2
    assert configs <= naive_configs          # no phantom configurations
    assert orbits == naive_orbits            # every orbit represented
    assert count <= nosym_count              # the reduction only merges
    assert nosym_configs == naive_configs    # baseline stays exact


@pytest.mark.parametrize(
    "entry", HATCHED_ENTRIES, ids=[e.name for e in HATCHED_ENTRIES]
)
def test_hatched_entries_stay_exact_without_symmetry(entry):
    """Timestamp-order-sensitive entries: hatch documented and honoured."""
    programs = symmetric_programs(entry)
    naive_configs, _ = _run_naive(entry, programs)
    _, configs, _, stats = _run(entry, programs, symmetry=entry.symmetry)
    assert entry.symmetry is False
    assert stats.symmetry_group == 1
    assert configs == naive_configs


def test_hatch_list_is_the_timestamp_order_sensitive_entries():
    assert sorted(e.name for e in HATCHED_ENTRIES) == [
        "LWW-Element Set",
        "LWW-Register",
        "LWW-Register (SB)",
        "Wooki",
    ]


# ----------------------------------------------------------------------
# Three-replica smoke (1-op programs; reference is the nosym engine,
# which the 2-replica suite pins against the naive oracle)
# ----------------------------------------------------------------------


def test_three_replica_op_smoke():
    entry = entry_by_name("Counter")
    programs = {r: [("inc", ())] for r in ("r1", "r2", "r3")}
    count, configs, orbits, stats = _run(entry, programs, symmetry=True)
    nosym_count, nosym_configs, nosym_orbits, _ = _run(
        entry, programs, symmetry=False
    )
    assert stats.symmetry_group == 6
    assert orbits == nosym_orbits
    assert configs <= nosym_configs
    assert count < nosym_count


def test_three_replica_state_smoke():
    entry = entry_by_name("G-Counter")
    programs = {r: [("inc", ())] for r in ("r1", "r2", "r3")}
    naive_configs, naive_orbits = _run_naive(entry, programs)
    count, configs, orbits, stats = _run(entry, programs, symmetry=True)
    assert stats.symmetry_group == 6
    assert configs <= naive_configs
    assert orbits == naive_orbits


# ----------------------------------------------------------------------
# Pinning rule and guards
# ----------------------------------------------------------------------


def test_asymmetric_programs_pin_all_replicas():
    entry = entry_by_name("Counter")
    programs = {"r1": [("inc", ()), ("inc", ())], "r2": [("read", ())]}
    count, configs, _, stats = _run(entry, programs, symmetry=True)
    nosym_count, nosym_configs, _, _ = _run(entry, programs, symmetry=False)
    assert stats.symmetry_group == 1
    assert stats.pinned_replicas == 2
    assert count == nosym_count
    assert configs == nosym_configs


def test_partial_symmetry_pins_only_the_odd_replica():
    programs = {
        "r1": [("inc", ())], "r2": [("inc", ())], "r3": [("read", ())]
    }
    group = build_group(programs)
    assert group.order == 2
    assert group.pinned == ("r3",)
    assert replica_classes(programs) == (("r1", "r2"), ("r3",))


def test_replica_name_in_payload_disables_reduction():
    entry = entry_by_name("OR-Set")
    programs = {"r1": [("add", ("r1",))], "r2": [("add", ("r1",))]}
    _, _, _, stats = _run(entry, programs, symmetry=True)
    assert stats.symmetry_group == 1


def test_group_size_cap_falls_back_to_identity():
    programs = {f"r{i}": [("inc", ())] for i in range(1, 8)}  # 7! > 720
    group = build_group(programs)
    assert group.order == 1
    assert not group.enabled


# ----------------------------------------------------------------------
# canon_key / CanonFP machinery
# ----------------------------------------------------------------------


def test_canon_key_renames_inside_unordered_containers():
    mapping = {"r1": "r2", "r2": "r1"}
    value = frozenset({("r1", 2), ("r2", 1)})
    renamed = canon_key(value, mapping)
    assert renamed == canon_key(frozenset({("r2", 2), ("r1", 1)}), {})


def test_canon_key_preserves_tuple_order():
    mapping = {"r1": "r2", "r2": "r1"}
    assert canon_key(("r1", "r2"), mapping) == canon_key(("r2", "r1"), {})
    assert canon_key(("r1", "r2"), {}) != canon_key(("r2", "r1"), {})


def test_canon_fp_pickle_round_trip():
    fp = CanonFP((("s", "r1"), ("i", 3)))
    clone = pickle.loads(pickle.dumps(fp))
    assert clone == fp
    assert hash(clone) == hash(fp)
    assert clone in {fp}


def test_rename_transition_covers_all_kinds():
    mapping = {"r1": "r2", "r2": "r1"}
    assert rename_transition(("inv", "r1", 0), mapping) == ("inv", "r2", 0)
    assert rename_transition(
        ("del", "r1", ("r2", 1)), mapping
    ) == ("del", "r2", ("r1", 1))
    assert rename_transition(("gos", "r1", "r2"), mapping) == (
        "gos", "r2", "r1"
    )


def test_trivial_group_is_identity_only():
    group = SymmetryGroup([{}], (("r1",),), ("r1",))
    assert not group.enabled
    assert group.order == 1


# ----------------------------------------------------------------------
# Interaction with the other engine toggles
# ----------------------------------------------------------------------


def test_symmetry_composes_with_reduction_off():
    entry = entry_by_name("OR-Set")
    programs = symmetric_programs(entry)
    _, _, orbits, _ = _run(entry, programs, symmetry=True)
    _, _, orbits_no_por, _ = _run(
        entry, programs, symmetry=True, reduction=False
    )
    assert orbits_no_por == orbits


def test_state_fp_cache_peak_is_tracked_and_bounded():
    entry = entry_by_name("G-Counter")
    programs = symmetric_programs(entry)
    _, _, _, stats = _run(entry, programs, symmetry=True)
    assert 0 < stats.state_fp_cache_peak <= (1 << 13)
