"""The fast exploration engine: differential oracle, dedup, snapshots.

The load-bearing guarantee is the differential one: on every registry
entry's standard programs, the optimized engine (sleep sets + state dedup
+ copy-on-write snapshots) reaches exactly the same *set* of final
configurations as the kept naive explorer — the canonical keys of
:func:`repro.runtime.op_config_key` / :func:`state_config_key` make
"same configuration" precise (labels by logical id, visibility, seen
sets, replica-state fingerprints, program returns).
"""

import copy

import pytest

from repro.crdts import OpCounter, OpORSet
from repro.crdts.statebased import SBPNCounter
from repro.proofs.exhaustive import standard_programs
from repro.proofs.registry import ALL_ENTRIES
from repro.runtime import (
    ExploreStats,
    OpBasedSystem,
    StateBasedSystem,
    explore_op_programs,
    explore_op_programs_naive,
    explore_state_programs,
    explore_state_programs_naive,
    op_config_key,
    state_config_key,
)

OB_ENTRIES = [e for e in ALL_ENTRIES if e.kind == "OB"]
SB_ENTRIES = [e for e in ALL_ENTRIES if e.kind == "SB"]


def _op_keys_naive(entry, programs, **kwargs):
    keys = set()
    explore_op_programs_naive(
        lambda: OpBasedSystem(entry.make_crdt(), replicas=sorted(programs)),
        programs,
        lambda s, r: keys.add(op_config_key(s, r)),
        **kwargs,
    )
    return keys


def _op_keys_engine(entry, programs, **kwargs):
    keys = set()
    explore_op_programs(
        lambda: OpBasedSystem(entry.make_crdt(), replicas=sorted(programs)),
        programs,
        lambda s, r: keys.add(op_config_key(s, r)),
        **kwargs,
    )
    return keys


def _state_keys_naive(entry, programs, **kwargs):
    keys = set()
    explore_state_programs_naive(
        lambda: StateBasedSystem(entry.make_crdt(), replicas=sorted(programs)),
        programs,
        lambda s, r: keys.add(state_config_key(s, r)),
        **kwargs,
    )
    return keys


def _state_keys_engine(entry, programs, **kwargs):
    keys = set()
    explore_state_programs(
        lambda: StateBasedSystem(entry.make_crdt(), replicas=sorted(programs)),
        programs,
        lambda s, r: keys.add(state_config_key(s, r)),
        **kwargs,
    )
    return keys


# ----------------------------------------------------------------------
# Differential oracle: engine == naive on every registry entry
# ----------------------------------------------------------------------


@pytest.mark.parametrize("entry", OB_ENTRIES, ids=[e.name for e in OB_ENTRIES])
def test_op_engine_matches_naive(entry):
    programs = standard_programs(entry)
    naive = _op_keys_naive(entry, programs)
    fast = _op_keys_engine(entry, programs)
    assert fast == naive


@pytest.mark.parametrize("entry", SB_ENTRIES, ids=[e.name for e in SB_ENTRIES])
def test_state_engine_matches_naive(entry):
    programs = standard_programs(entry)
    naive = _state_keys_naive(entry, programs, max_gossips=2)
    fast = _state_keys_engine(entry, programs, max_gossips=2)
    assert fast == naive


def test_escape_hatch_modes_agree():
    """reduction/dedup toggles change cost, never the configuration set."""
    entry = next(e for e in OB_ENTRIES if e.name == "OR-Set")
    programs = standard_programs(entry)
    reference = _op_keys_engine(entry, programs)
    assert _op_keys_engine(entry, programs, reduction=False) == reference
    assert (
        _op_keys_engine(entry, programs, reduction=False, dedup=False)
        == reference
    )


def test_state_escape_hatch_modes_agree():
    entry = next(e for e in SB_ENTRIES if e.name == "PN-Counter")
    programs = standard_programs(entry)
    reference = _state_keys_engine(entry, programs, max_gossips=2)
    assert (
        _state_keys_engine(entry, programs, max_gossips=2, reduction=False)
        == reference
    )


def test_non_quiescent_exploration_matches_naive():
    entry = next(e for e in OB_ENTRIES if e.name == "Counter")
    programs = {"r1": [("inc", ()), ("read", ())], "r2": [("inc", ())]}
    naive = _op_keys_naive(entry, programs, require_quiescence=False)
    fast = _op_keys_engine(entry, programs, require_quiescence=False)
    assert fast == naive
    # Partial-delivery configurations are strictly richer.
    assert len(fast) > len(_op_keys_engine(entry, programs))


# ----------------------------------------------------------------------
# Exact max_configurations cutoff (regression: the old op explorer
# overshot the cap on the require_quiescence=False visit path)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("cap", [1, 3, 10])
def test_engine_cap_exact(cap):
    visited = []
    count = explore_op_programs(
        lambda: OpBasedSystem(OpCounter(), replicas=["r1", "r2"]),
        {"r1": [("inc", ()), ("read", ())], "r2": [("inc", ()), ("read", ())]},
        lambda s, r: visited.append(1),
        max_configurations=cap,
    )
    assert count == cap
    assert len(visited) == cap


@pytest.mark.parametrize("require_quiescence", [True, False])
def test_naive_cap_exact(require_quiescence):
    visited = []
    count = explore_op_programs_naive(
        lambda: OpBasedSystem(OpCounter(), replicas=["r1", "r2"]),
        {"r1": [("inc", ()), ("read", ())], "r2": [("inc", ()), ("read", ())]},
        lambda s, r: visited.append(1),
        require_quiescence=require_quiescence,
        max_configurations=5,
    )
    assert count == 5
    assert len(visited) == 5


def test_state_caps_exact():
    for explorer in (explore_state_programs, explore_state_programs_naive):
        visited = []
        count = explorer(
            lambda: StateBasedSystem(SBPNCounter(), replicas=["r1", "r2"]),
            {"r1": [("inc", ()), ("read", ())], "r2": [("inc", ())]},
            lambda s, r: visited.append(1),
            max_gossips=2,
            max_configurations=4,
        )
        assert count == 4
        assert len(visited) == 4


# ----------------------------------------------------------------------
# Fingerprint stability
# ----------------------------------------------------------------------


def _run_ops(crdt_factory, script):
    system = OpBasedSystem(crdt_factory(), replicas=["r1", "r2"])
    for step in script:
        if step[0] == "inv":
            system.invoke(step[1], step[2], step[3])
        else:
            system.deliver_all()
    return system


def test_fingerprint_deterministic_across_runs():
    """Equal op sequences on fresh systems yield equal fingerprints.

    OR-Set tags embed Lamport timestamps (not uids), so freeze-based
    fingerprints must not depend on the run or on object identity.
    """
    script = [
        ("inv", "r1", "add", ("a",)),
        ("inv", "r2", "add", ("a",)),
        ("deliver",),
        ("inv", "r1", "remove", ("a",)),
        ("deliver",),
    ]
    a = _run_ops(OpORSet, script)
    b = _run_ops(OpORSet, script)
    crdt = OpORSet()
    for replica in ("r1", "r2"):
        assert crdt.fingerprint(a.state(replica)) == crdt.fingerprint(
            b.state(replica)
        )


def test_fingerprint_path_independent():
    """Commuting delivery orders reach states with equal fingerprints."""
    crdt = OpCounter()

    def run(deliver_first):
        system = OpBasedSystem(OpCounter(), replicas=["r1", "r2"])
        first = system.invoke("r1", "inc", ())
        second = system.invoke("r2", "inc", ())
        order = [first, second] if deliver_first else [second, first]
        for label in order:
            for replica in system.replicas:
                if label in system.deliverable(replica):
                    system.deliver(replica, label)
        return system

    a, b = run(True), run(False)
    for replica in ("r1", "r2"):
        assert crdt.fingerprint(a.state(replica)) == crdt.fingerprint(
            b.state(replica)
        )


def test_fingerprint_distinguishes_states():
    crdt = OpCounter()
    system = OpBasedSystem(OpCounter(), replicas=["r1", "r2"])
    before = crdt.fingerprint(system.state("r1"))
    system.invoke("r1", "inc", ())
    assert crdt.fingerprint(system.state("r1")) != before


# ----------------------------------------------------------------------
# Snapshot / restore round trips
# ----------------------------------------------------------------------


def test_op_snapshot_roundtrip():
    system = OpBasedSystem(OpORSet(), replicas=["r1", "r2"])
    system.invoke("r1", "add", ("a",))
    token = system.snapshot()
    frozen = copy.deepcopy(
        (system._states, system._seen, system._vis, system.generation_order)
    )

    system.invoke("r2", "add", ("b",))
    system.deliver_all()
    system.invoke("r1", "remove", ("a",))
    system.restore(token)

    assert system._states == frozen[0]
    assert system._seen == frozen[1]
    assert system._vis == frozen[2]
    assert system.generation_order == frozen[3]

    # The token is reusable: mutate, restore again, same result.
    system.invoke("r1", "add", ("c",))
    system.restore(token)
    assert system._states == frozen[0]
    assert len(system.generation_order) == 1


def test_op_snapshot_restores_generator_clocks():
    system = OpBasedSystem(OpORSet(), replicas=["r1", "r2"])
    system.invoke("r1", "add", ("a",))
    token = system.snapshot()
    divergent = system.invoke("r1", "add", ("b",))
    system.restore(token)
    replayed = system.invoke("r1", "add", ("b",))
    # Same logical position => same timestamp after restore.
    assert replayed.ts == divergent.ts


def test_state_snapshot_roundtrip():
    system = StateBasedSystem(SBPNCounter(), replicas=["r1", "r2"])
    system.invoke("r1", "inc", ())
    token = system.snapshot()
    frozen = copy.deepcopy(
        (system._states, system._seen, system._vis, system.generation_order)
    )

    system.invoke("r2", "inc", ())
    system.gossip("r1", "r2")
    system.restore(token)
    assert system._states == frozen[0]
    assert system._seen == frozen[1]
    assert system._vis == frozen[2]
    assert system.generation_order == frozen[3]

    system.invoke("r2", "dec", ())
    system.restore(token)
    assert system._states == frozen[0]


def test_snapshot_safe_flags():
    assert OpBasedSystem(OpORSet(), replicas=["r1"]).snapshot_safe
    assert StateBasedSystem(SBPNCounter(), replicas=["r1"]).snapshot_safe


# ----------------------------------------------------------------------
# Deepcopy fallback for CRDTs that opt out of snapshots
# ----------------------------------------------------------------------


class _UnsafeCounter(OpCounter):
    snapshot_safe = False


def test_deepcopy_fallback_matches_snapshot_path():
    programs = {
        "r1": [("inc", ()), ("read", ())],
        "r2": [("inc", ()), ("read", ())],
    }

    def keys_for(crdt_factory):
        keys = set()
        stats = ExploreStats()
        explore_op_programs(
            lambda: OpBasedSystem(crdt_factory(), replicas=["r1", "r2"]),
            programs,
            lambda s, r: keys.add(op_config_key(s, r)),
            stats=stats,
        )
        return keys, stats

    fast_keys, fast_stats = keys_for(OpCounter)
    slow_keys, slow_stats = keys_for(_UnsafeCounter)
    assert fast_keys == slow_keys
    assert fast_stats.snapshots > 0 and fast_stats.deepcopies == 0
    assert slow_stats.deepcopies > 0 and slow_stats.snapshots == 0


# ----------------------------------------------------------------------
# Stats record
# ----------------------------------------------------------------------


def test_stats_populated():
    stats = ExploreStats()
    explore_op_programs(
        lambda: OpBasedSystem(OpORSet(), replicas=["r1", "r2"]),
        {"r1": [("add", ("a",)), ("read", ())], "r2": [("add", ("b",))]},
        lambda s, r: None,
        stats=stats,
    )
    assert stats.configurations > 0
    assert stats.states_visited >= stats.configurations
    assert stats.branches_pruned > 0
    assert stats.wall_time > 0
    assert stats.peak_frontier >= 1
    payload = stats.as_dict()
    assert payload["configurations"] == stats.configurations
    assert 0.0 <= payload["dedup_ratio"] <= 1.0
