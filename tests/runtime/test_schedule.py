"""Schedulers: randomized drivers and the exhaustive explorer."""

from repro.core.convergence import check_convergence
from repro.crdts import OpCounter, OpORSet, SBPNCounter
from repro.runtime import (
    CounterWorkload,
    ORSetWorkload,
    OpBasedSystem,
    explore_op_programs,
    random_op_execution,
    random_state_execution,
)


class TestRandomOpExecution:
    def test_reaches_quiescence_and_reads(self):
        system = random_op_execution(
            OpCounter(), CounterWorkload(), operations=8, seed=1
        )
        assert system.pending_count() == 0
        reads = [l for l in system.generation_order if l.method == "read"]
        assert len(reads) >= len(system.replicas)

    def test_deterministic_for_seed(self):
        one = random_op_execution(OpCounter(), CounterWorkload(), seed=7)
        two = random_op_execution(OpCounter(), CounterWorkload(), seed=7)
        assert [l.method for l in one.generation_order] == [
            l.method for l in two.generation_order
        ]

    def test_converges(self):
        system = random_op_execution(
            OpORSet(), ORSetWorkload(), operations=12, seed=3
        )
        ok, _ = check_convergence(system.replica_views())
        assert ok

    def test_operation_count(self):
        system = random_op_execution(
            OpCounter(), CounterWorkload(), operations=6, seed=2,
            final_reads=False,
        )
        assert len(system.generation_order) == 6


class TestRandomStateExecution:
    def test_runs_and_converges(self):
        system = random_state_execution(
            SBPNCounter(), CounterWorkload(), operations=10, seed=5
        )
        ok, _ = check_convergence(system.replica_views())
        assert ok

    def test_messages_were_exchanged(self):
        system = random_state_execution(
            SBPNCounter(), CounterWorkload(), operations=10, seed=5
        )
        assert system.messages


class TestExhaustiveExplorer:
    def test_visits_all_interleavings_of_two_ops(self):
        programs = {
            "r1": [("inc", ())],
            "r2": [("inc", ())],
        }
        counts = []

        def visit(system, returns):
            counts.append(
                tuple(system.state(r) for r in ("r1", "r2"))
            )

        visited = explore_op_programs(
            lambda: OpBasedSystem(OpCounter(), replicas=("r1", "r2")),
            programs,
            visit,
        )
        assert visited == len(counts) > 1
        # Quiescent configurations all converge to 2.
        assert set(counts) == {(2, 2)}

    def test_returns_passed_in_program_order(self):
        programs = {"r1": [("inc", ()), ("read", ())]}
        seen = []

        def visit(system, returns):
            seen.append(tuple(returns["r1"]))

        explore_op_programs(
            lambda: OpBasedSystem(OpCounter(), replicas=("r1",)),
            programs,
            visit,
        )
        assert set(seen) == {(None, 1)}

    def test_read_outcomes_depend_on_interleaving(self):
        programs = {
            "r1": [("inc", ())],
            "r2": [("read", ())],
        }
        outcomes = set()

        def visit(system, returns):
            outcomes.add(returns["r2"][0])

        explore_op_programs(
            lambda: OpBasedSystem(OpCounter(), replicas=("r1", "r2")),
            programs,
            visit,
        )
        assert outcomes == {0, 1}

    def test_max_configurations_bound(self):
        programs = {
            "r1": [("inc", ()), ("inc", ())],
            "r2": [("inc", ()), ("inc", ())],
        }
        visited = explore_op_programs(
            lambda: OpBasedSystem(OpCounter(), replicas=("r1", "r2")),
            programs,
            lambda s, r: None,
            max_configurations=3,
        )
        assert visited == 3
