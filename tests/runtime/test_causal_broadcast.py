"""Causal broadcast over an adversarial network."""

import pytest

from repro.core.convergence import check_convergence
from repro.core.errors import PreconditionViolation
from repro.core.ralin import execution_order_check, timestamp_order_check
from repro.proofs.registry import entry_by_name
from repro.runtime import OpBasedSystem
from repro.runtime.causal_broadcast import UnreliableCausalBroadcast

import random


def adversarial_run(entry, seed, operations=12):
    rng = random.Random(seed)
    system = OpBasedSystem(entry.make_crdt(), replicas=("r1", "r2", "r3"))
    network = UnreliableCausalBroadcast(
        system, seed=seed, duplicate_probability=0.3, drop_probability=0.3
    )
    workload = entry.make_workload()
    issued = 0
    while issued < operations:
        replica = rng.choice(system.replicas)
        proposal = workload.propose(system.state(replica), rng)
        if proposal is None:
            continue
        try:
            system.invoke(replica, *proposal)
            issued += 1
        except PreconditionViolation:
            continue
        network.broadcast_new()
        for _ in range(rng.randint(0, 4)):
            network.deliver_one()
    network.run_to_quiescence()
    for replica in system.replicas:
        system.invoke(replica, "read")
    network.run_to_quiescence()
    return system, network


NAMES = ["Counter", "OR-Set", "RGA", "Wooki"]


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("seed", [1, 2])
def test_quiescence_despite_adversary(name, seed):
    entry = entry_by_name(name)
    system, network = adversarial_run(entry, seed)
    assert system.pending_count() == 0
    ok, offenders = check_convergence(system.replica_views())
    assert ok, offenders
    checker = (
        execution_order_check if entry.lin_class == "EO"
        else timestamp_order_check
    )
    outcome = checker(
        system.history(), entry.make_spec(), system.generation_order,
        entry.make_gamma(),
    )
    assert outcome.ok, outcome.reason


def test_adversary_actually_misbehaved():
    entry = entry_by_name("OR-Set")
    _system, network = adversarial_run(entry, seed=5, operations=15)
    assert network.stats.drops > 0
    assert network.stats.duplicates > 0
    assert network.stats.retransmissions > 0
    assert network.stats.buffered > 0


def test_exactly_once_application():
    # Duplicates never double-apply: counting delivered applications.
    entry = entry_by_name("Counter")
    system, network = adversarial_run(entry, seed=9)
    expected = sum(
        1
        for label in system.generation_order
        for replica in system.replicas
        if replica != label.origin
    )
    assert network.stats.delivered == expected


def test_reliable_network_degenerates_to_deliver_all():
    entry = entry_by_name("Counter")
    system = OpBasedSystem(entry.make_crdt(), replicas=("r1", "r2"))
    network = UnreliableCausalBroadcast(
        system, seed=0, duplicate_probability=0.0, drop_probability=0.0
    )
    system.invoke("r1", "inc")
    system.invoke("r2", "inc")
    network.run_to_quiescence()
    assert system.state("r1") == system.state("r2") == 2
