"""Recording and replaying op-based executions."""

from repro.crdts import OpORSet, OpRGA
from repro.runtime import (
    ORSetWorkload,
    RGAWorkload,
    dumps,
    loads,
    random_op_execution,
    record_schedule,
    replay_schedule,
)
from repro.runtime.composition import composed
from repro.crdts import OpCounter


class TestRecordReplay:
    def test_replay_reproduces_states(self):
        original = random_op_execution(
            OpORSet(), ORSetWorkload(), operations=10, seed=13
        )
        schedule = record_schedule(original)
        replayed = replay_schedule(OpORSet(), schedule)
        for replica in original.replicas:
            assert original.state(replica) == replayed.state(replica)

    def test_replay_reproduces_returns_and_timestamps(self):
        original = random_op_execution(
            OpRGA(), RGAWorkload(), operations=8, seed=21
        )
        replayed = replay_schedule(OpRGA(), record_schedule(original))
        for old, new in zip(
            original.generation_order, replayed.generation_order
        ):
            assert old.method == new.method
            assert old.args == new.args
            assert old.ret == new.ret
            assert old.ts == new.ts
            assert old.origin == new.origin

    def test_replay_reproduces_history_shape(self):
        original = random_op_execution(
            OpORSet(), ORSetWorkload(), operations=8, seed=5
        )
        replayed = replay_schedule(OpORSet(), record_schedule(original))
        assert len(original.history()) == len(replayed.history())
        assert len(original.history().closure()) == len(
            replayed.history().closure()
        )

    def test_json_round_trip(self):
        original = random_op_execution(
            OpORSet(), ORSetWorkload(), operations=6, seed=2
        )
        schedule = loads(dumps(record_schedule(original)))
        replayed = replay_schedule(OpORSet(), schedule)
        for replica in original.replicas:
            assert original.state(replica) == replayed.state(replica)

    def test_multi_object_schedule(self):
        system = composed(
            {"a": OpCounter(), "b": OpCounter()}, replicas=("r1", "r2")
        )
        system.invoke("r1", "inc", (), obj="a")
        system.invoke("r2", "inc", (), obj="b")
        system.deliver_all()
        replayed = replay_schedule(
            {"a": OpCounter(), "b": OpCounter()}, record_schedule(system)
        )
        assert replayed.state("r1", "a") == 1
        assert replayed.state("r2", "b") == 1
