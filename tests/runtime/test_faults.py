"""The deterministic fault-injection subsystem (`runtime/faults.py`)."""

import pytest

from repro.core.convergence import check_convergence
from repro.core.errors import SchedulingError
from repro.proofs.registry import entry_by_name
from repro.runtime import OpBasedSystem, StateBasedSystem
from repro.runtime.faults import (
    BUFFERED,
    AdversaryTrace,
    CrashSpec,
    FaultPlan,
    LossyGossipDriver,
    PartitionWindow,
    RELIABLE_PLAN,
    UnreliableCausalBroadcast,
)


class TestFaultPlan:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError, match="drop_probability"):
            FaultPlan(drop_probability=1.5)
        with pytest.raises(ValueError, match="stale_probability"):
            FaultPlan(stale_probability=-0.1)

    def test_partition_window_validated(self):
        with pytest.raises(ValueError, match="empty"):
            PartitionWindow(5, 5, (("r1",),))
        with pytest.raises(ValueError, match="disjoint"):
            PartitionWindow(0, 5, (("r1", "r2"), ("r2",)))

    def test_crash_spec_validated(self):
        with pytest.raises(ValueError, match="after"):
            CrashSpec("r1", at_step=5, recover_step=5)
        with pytest.raises(ValueError, match="non-negative"):
            CrashSpec("r1", at_step=-1)

    def test_crashed_window(self):
        plan = FaultPlan(crashes=(CrashSpec("r2", 3, 7),))
        assert not plan.crashed(2, "r2")
        assert plan.crashed(3, "r2")
        assert plan.crashed(6, "r2")
        assert not plan.crashed(7, "r2")
        assert not plan.crashed(5, "r1")

    def test_unrecovered_crash(self):
        plan = FaultPlan(crashes=(CrashSpec("r2", 3),))
        assert plan.crashed(10_000, "r2")
        assert not plan.recovers()

    def test_connected_respects_windows(self):
        plan = FaultPlan(partitions=(
            PartitionWindow(2, 6, (("r1",), ("r2", "r3"))),
        ))
        assert plan.connected(1, "r1", "r2")     # before the window
        assert not plan.connected(2, "r1", "r2")
        assert plan.connected(3, "r2", "r3")     # same block
        assert plan.connected(6, "r1", "r2")     # window closed

    def test_unlisted_replicas_stay_connected(self):
        plan = FaultPlan(partitions=(PartitionWindow(0, 9, (("r1",),)),))
        assert not plan.connected(1, "r1", "r4")
        assert plan.connected(1, "r4", "r5")

    def test_horizon(self):
        plan = FaultPlan(
            partitions=(PartitionWindow(2, 6, (("r1",),)),),
            crashes=(CrashSpec("r2", 3, 11),),
        )
        assert plan.horizon() == 11
        assert RELIABLE_PLAN.horizon() == 0

    def test_round_trips_through_dict(self):
        plan = FaultPlan(
            name="x",
            drop_probability=0.4,
            duplicate_probability=0.2,
            delay_probability=0.1,
            stale_probability=0.3,
            partitions=(PartitionWindow(1, 4, (("r1", "r2"), ("r3",))),),
            crashes=(CrashSpec("r3", 2, 9), CrashSpec("r1", 20)),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan


class TestAdversaryTrace:
    def test_fingerprint_tracks_events(self):
        one = AdversaryTrace(seed=1, plan=RELIABLE_PLAN)
        two = AdversaryTrace(seed=1, plan=RELIABLE_PLAN)
        one.record(1, "send", "r2", 0)
        two.record(1, "send", "r2", 0)
        assert one.fingerprint() == two.fingerprint()
        two.record(2, "drop", "r3", 0)
        assert one.fingerprint() != two.fingerprint()

    def test_round_trips_through_dict(self):
        trace = AdversaryTrace(seed=7, plan=FaultPlan(drop_probability=0.5))
        trace.record(1, "send", "r2", 0)
        trace.record(2, "deliver", "r2", 0)
        back = AdversaryTrace.from_dict(trace.to_dict())
        assert back == trace
        assert back.fingerprint() == trace.fingerprint()

    def test_event_counts(self):
        trace = AdversaryTrace(seed=0, plan=RELIABLE_PLAN)
        trace.record(1, "send", "r2", 0)
        trace.record(2, "send", "r3", 0)
        trace.record(3, "drop", "r2", 0)
        assert trace.event_counts() == {"send": 2, "drop": 1}


def _counter_system(replicas=("r1", "r2")):
    entry = entry_by_name("Counter")
    return OpBasedSystem(entry.make_crdt(), replicas=replicas)


class TestOpBasedFaults:
    def test_buffered_packet_is_handled_but_not_progress(self):
        # op2 causally follows op1; with op1's packet lost, op2 can only
        # be buffered — which must NOT count as progress, or quiescence
        # defers the retransmission of op1 for up to 25 rounds.
        system = _counter_system()
        network = UnreliableCausalBroadcast(system, seed=0, plan=RELIABLE_PLAN)
        system.invoke("r1", "inc")
        system.invoke("r1", "inc")
        network.broadcast_new()
        op1 = system.generation_order[0]
        network.in_flight = [p for p in network.in_flight if p[1] is not op1]

        assert network.deliver_one() == BUFFERED
        assert network.stats.buffered == 1
        # Requeueing the same blocked packet again is not a new buffering.
        assert network.deliver_one() == BUFFERED
        assert network.stats.buffered == 1

        # Non-progress triggers retransmission immediately: quiescence in
        # well under the 25-round retransmission period of the old code.
        network.run_to_quiescence(max_rounds=20)
        assert system.outstanding_count() == 0
        assert network.stats.retransmissions >= 1

    @pytest.mark.parametrize("seed", range(6))
    def test_high_drop_rate_quiesces(self, seed):
        # Regression: with pending_count() as the quiescence test, a run
        # could return while dropped packets left labels outstanding but
        # causally blocked (hence not "pending").
        entry = entry_by_name("OR-Set")
        system = OpBasedSystem(entry.make_crdt(), replicas=("r1", "r2", "r3"))
        plan = FaultPlan(name="brutal", drop_probability=0.9,
                         duplicate_probability=0.2, delay_probability=0.2)
        network = UnreliableCausalBroadcast(system, seed=seed, plan=plan)
        workload = entry.make_workload()
        import random
        rng = random.Random(seed)
        for _ in range(10):
            replica = rng.choice(system.replicas)
            proposal = workload.propose(system.state(replica), rng)
            system.invoke(replica, *proposal)
            network.broadcast_new()
            network.deliver_one()
        network.run_to_quiescence()
        assert system.outstanding_count() == 0
        assert network.stats.drops > 0
        ok, offenders = check_convergence(system.replica_views())
        assert ok, offenders

    def test_crash_purges_in_flight_and_recovers(self):
        system = _counter_system(("r1", "r2", "r3"))
        plan = FaultPlan(name="crash", crashes=(CrashSpec("r2", 2, 5),))
        trace = AdversaryTrace(seed=0, plan=plan)
        network = UnreliableCausalBroadcast(
            system, seed=0, plan=plan, trace=trace
        )
        network.tick()                      # step 1: r2 still up
        system.invoke("r1", "inc")
        network.broadcast_new()
        assert any(target == "r2" for target, _ in network.in_flight)
        network.tick()                      # step 2: r2 crashes
        assert all(target != "r2" for target, _ in network.in_flight)
        assert network.stats.crash_drops >= 1
        network.run_to_quiescence()
        assert system.outstanding_count() == 0
        kinds = trace.event_counts()
        assert kinds.get("crash") == 1 and kinds.get("recover") == 1

    def test_partition_blocks_cross_traffic_then_heals(self):
        system = _counter_system(("r1", "r2", "r3"))
        plan = FaultPlan(name="split", partitions=(
            PartitionWindow(1, 5, (("r1",), ("r2", "r3"))),
        ))
        network = UnreliableCausalBroadcast(system, seed=0, plan=plan)
        network.tick()                      # step 1: window open
        system.invoke("r1", "inc")
        network.broadcast_new()
        assert network.stats.partition_drops == 2
        assert not network.in_flight
        network.run_to_quiescence()
        assert system.outstanding_count() == 0

    def test_unrecovered_crash_is_rejected(self):
        system = _counter_system()
        plan = FaultPlan(crashes=(CrashSpec("r2", 1),))
        network = UnreliableCausalBroadcast(system, seed=0, plan=plan)
        with pytest.raises(SchedulingError, match="recovery"):
            network.run_to_quiescence()

    def test_legacy_constructor_builds_a_plan(self):
        system = _counter_system()
        network = UnreliableCausalBroadcast(
            system, seed=0, duplicate_probability=0.3, drop_probability=0.1
        )
        assert network.plan.duplicate_probability == 0.3
        assert network.plan.drop_probability == 0.1


def _gossip_run(plan, seed=0, incs=6):
    entry = entry_by_name("G-Counter")
    system = StateBasedSystem(entry.make_crdt(), replicas=("r1", "r2", "r3"))
    driver = LossyGossipDriver(system, seed=seed, plan=plan)
    import random
    rng = random.Random(seed)
    for _ in range(incs):
        system.invoke(rng.choice(system.replicas), "inc")
        driver.tick()
        driver.gossip_once()
    driver.run_to_quiescence()
    return system, driver


class TestLossyGossip:
    def test_duplicate_heavy_gossip_is_idempotent(self):
        # Merges are joins: delivering the same snapshot many times (and
        # stale ones out of order) must not inflate the counter.
        plan = FaultPlan(name="dup-heavy", duplicate_probability=0.9,
                         stale_probability=0.6)
        system, driver = _gossip_run(plan, seed=1, incs=8)
        assert driver.stats.duplicates > 0
        assert driver.stats.stale_redeliveries > 0
        values = {sum(system.state(r).values()) for r in system.replicas}
        assert values == {8}

    def test_lossy_gossip_converges(self):
        plan = FaultPlan(name="lossy", drop_probability=0.9,
                         stale_probability=0.3)
        system, driver = _gossip_run(plan, seed=2)
        assert driver.stats.drops > 0
        assert system.outstanding_count() == 0
        ok, offenders = check_convergence(system.replica_views())
        assert ok, offenders

    def test_crash_window_delays_but_does_not_diverge(self):
        plan = FaultPlan(name="crash", drop_probability=0.2,
                         crashes=(CrashSpec("r3", 2, 12),))
        system, driver = _gossip_run(plan, seed=3)
        assert system.outstanding_count() == 0
        ok, offenders = check_convergence(system.replica_views())
        assert ok, offenders

    def test_partitioned_pairs_exchange_nothing(self):
        plan = FaultPlan(name="split", partitions=(
            PartitionWindow(0, 10_000, (("r1",), ("r2", "r3"))),
        ))
        entry = entry_by_name("G-Counter")
        system = StateBasedSystem(
            entry.make_crdt(), replicas=("r1", "r2", "r3")
        )
        driver = LossyGossipDriver(system, seed=0, plan=plan)
        system.invoke("r1", "inc")
        for _ in range(60):
            driver.tick()
            driver.gossip_once()
        # r1 is cut off: its increment never crosses the partition.
        assert sum(system.state("r2").values()) == 0
        assert sum(system.state("r3").values()) == 0
        assert driver.stats.partition_drops > 0

    def test_unrecovered_crash_is_rejected(self):
        entry = entry_by_name("G-Counter")
        system = StateBasedSystem(entry.make_crdt())
        driver = LossyGossipDriver(
            system, plan=FaultPlan(crashes=(CrashSpec("r1", 1),))
        )
        system.invoke("r2", "inc")
        with pytest.raises(SchedulingError, match="recovery"):
            driver.run_to_quiescence()


class TestDeterminism:
    def _trace_of(self, seed):
        entry = entry_by_name("OR-Set")
        system = OpBasedSystem(entry.make_crdt(), replicas=("r1", "r2", "r3"))
        plan = FaultPlan(name="mix", drop_probability=0.4,
                         duplicate_probability=0.3, delay_probability=0.2)
        trace = AdversaryTrace(seed=seed, plan=plan)
        network = UnreliableCausalBroadcast(
            system, seed=seed, plan=plan, trace=trace
        )
        import random
        rng = random.Random(seed)
        workload = entry.make_workload()
        for _ in range(8):
            network.tick()
            replica = rng.choice(system.replicas)
            proposal = workload.propose(system.state(replica), rng)
            system.invoke(replica, *proposal)
            network.broadcast_new()
            network.deliver_one()
        network.run_to_quiescence()
        return trace

    def test_same_seed_same_trace(self):
        assert self._trace_of(11) == self._trace_of(11)
        assert (
            self._trace_of(11).fingerprint()
            == self._trace_of(11).fingerprint()
        )

    def test_different_seed_different_trace(self):
        assert self._trace_of(11).fingerprint() != \
            self._trace_of(12).fingerprint()
