"""The Cluster facade: handles, partitions, healing, checking."""

import pytest

from repro.core.errors import SchedulingError
from repro.crdts import OpCounter, OpORSet, OpRGA
from repro.runtime import Cluster
from repro.specs import ORSetRewriting, ORSetSpec


class TestHandles:
    def test_method_proxying(self):
        cluster = Cluster(OpCounter(), replicas=("a", "b"))
        cluster["a"].inc()
        assert cluster["a"].read() == 1
        assert cluster["b"].read() == 1  # auto-delivered

    def test_unknown_replica(self):
        cluster = Cluster(OpCounter(), replicas=("a",))
        with pytest.raises(KeyError):
            cluster["zz"]

    def test_state_access(self):
        cluster = Cluster(OpCounter(), replicas=("a",))
        cluster["a"].inc()
        assert cluster["a"].state() == 1

    def test_handle_repr(self):
        cluster = Cluster(OpCounter(), replicas=("a",))
        assert "a" in repr(cluster["a"])

    def test_multi_object(self):
        cluster = Cluster(
            {"c1": OpCounter(), "c2": OpCounter()}, replicas=("a",)
        )
        cluster["a"].inc(obj="c1")
        assert cluster["a"].read(obj="c1") == 1
        assert cluster["a"].read(obj="c2") == 0


class TestPartitions:
    def test_partition_blocks_delivery(self):
        cluster = Cluster(OpCounter(), replicas=("a", "b"))
        cluster.partition(["a"], ["b"])
        cluster["a"].inc()
        assert cluster["b"].read() == 0

    def test_heal_flushes(self):
        cluster = Cluster(OpCounter(), replicas=("a", "b"))
        cluster.partition(["a"], ["b"])
        cluster["a"].inc()
        cluster["b"].inc()
        cluster.heal()
        assert cluster["a"].read() == 2
        assert cluster["b"].read() == 2

    def test_unlisted_replicas_are_isolated(self):
        cluster = Cluster(OpCounter(), replicas=("a", "b", "c"))
        cluster.partition(["a", "b"])
        cluster["a"].inc()
        assert cluster["b"].read() == 1
        assert cluster["c"].read() == 0

    def test_overlapping_blocks_rejected(self):
        cluster = Cluster(OpCounter(), replicas=("a", "b"))
        with pytest.raises(SchedulingError):
            cluster.partition(["a", "b"], ["b"])

    def test_unknown_member_rejected(self):
        cluster = Cluster(OpCounter(), replicas=("a",))
        with pytest.raises(SchedulingError):
            cluster.partition(["zz"])

    def test_connected(self):
        cluster = Cluster(OpCounter(), replicas=("a", "b", "c"))
        cluster.partition(["a", "b"])
        assert cluster.connected("a", "b")
        assert not cluster.connected("a", "c")


class TestEndToEnd:
    def test_partitioned_orset_anomaly_then_check(self):
        # The shopping-cart anomaly through the friendly API.
        cluster = Cluster(OpORSet(), replicas=("us", "eu"))
        cluster["us"].add("book")
        cluster.partition(["us"], ["eu"])
        cluster["eu"].remove("book")
        cluster["us"].add("pen")
        cluster.heal()
        assert cluster["us"].read() == frozenset({"pen"})
        assert cluster.converged()
        assert cluster.check(ORSetSpec(), ORSetRewriting()).ok

    def test_rga_editing_across_partition(self):
        from repro.core.sentinels import ROOT
        from repro.specs import RGASpec

        cluster = Cluster(OpRGA(), replicas=("a", "b"))
        cluster["a"].addAfter(ROOT, "h")
        cluster.partition(["a"], ["b"])
        cluster["a"].addAfter("h", "i")
        cluster["b"].addAfter("h", "o")
        cluster.heal()
        assert cluster["a"].read() == cluster["b"].read()
        assert cluster.check(RGASpec()).ok

    def test_manual_delivery_mode(self):
        cluster = Cluster(OpCounter(), replicas=("a", "b"), auto_deliver=False)
        cluster["a"].inc()
        assert cluster["b"].read() == 0
        cluster.sync()
        assert cluster["b"].read() == 1


def _make_shadowing_crdt():
    from repro.core.spec import Role
    from repro.crdts.base import Effector, GeneratorResult, OpBasedCRDT

    class ShadowingCRDT(OpBasedCRDT):
        """Declares methods named ``state`` and ``name`` on purpose."""

        type_name = "Shadowing"
        methods = {
            "set": Role.UPDATE,
            "state": Role.QUERY,
            "name": Role.QUERY,
        }

        def initial_state(self):
            return None

        def generator(self, state, method, args, ts):
            if method == "set":
                return GeneratorResult(ret=None, effector=Effector("set", args))
            if method == "state":
                return GeneratorResult(ret=state, effector=None)
            if method == "name":
                return GeneratorResult(ret=self.type_name, effector=None)
            raise KeyError(method)

        def apply_effector(self, state, effector):
            return effector.args[0]

    return ShadowingCRDT()


class TestInvokeEscapeHatch:
    def test_invoke_reaches_any_method(self):
        cluster = Cluster(OpCounter(), replicas=("a", "b"))
        cluster["a"].invoke("inc")
        assert cluster["a"].invoke("read") == 1
        assert cluster["b"].invoke("read") == 1

    def test_invoke_with_obj(self):
        cluster = Cluster(
            {"c1": OpCounter(), "c2": OpCounter()}, replicas=("a",)
        )
        cluster["a"].invoke("inc", obj="c1")
        assert cluster["a"].invoke("read", obj="c1") == 1
        assert cluster["a"].invoke("read", obj="c2") == 0

    def test_invoke_reaches_shadowed_method(self):
        cluster = Cluster(_make_shadowing_crdt(), replicas=("a", "b"))
        cluster["a"].invoke("set", 7)
        assert cluster["a"].invoke("state") == 7
        assert cluster["b"].invoke("state") == 7
        assert cluster["a"].invoke("name") == "Shadowing"

    def test_state_raises_when_shadowed(self):
        cluster = Cluster(_make_shadowing_crdt(), replicas=("a",))
        with pytest.raises(SchedulingError, match="shadows a CRDT method"):
            cluster["a"].state()

    def test_name_raises_when_shadowed(self):
        cluster = Cluster(_make_shadowing_crdt(), replicas=("a",))
        with pytest.raises(SchedulingError, match="shadows a CRDT method"):
            cluster["a"].name

    def test_state_and_name_fine_without_collision(self):
        cluster = Cluster(OpCounter(), replicas=("a",))
        cluster["a"].inc()
        assert cluster["a"].state() == 1
        assert cluster["a"].name == "a"
