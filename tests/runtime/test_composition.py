"""Object composition ⊗ / ⊗ts (Sec. 5)."""

from repro.core.label import Label
from repro.core.sentinels import ROOT
from repro.crdts import OpCounter, OpORSet, OpRGA
from repro.runtime import (
    OpBasedSystem,
    check_composed_ra_linearizable,
    combine_per_object,
    composed,
    composed_spec,
    composed_ts,
)
from repro.scenarios import fig9_two_orsets, fig10_two_rgas
from repro.specs import CounterSpec, ORSetRewriting, ORSetSpec, RGASpec


class TestComposedSystems:
    def test_objects_isolated_state(self):
        system = composed({"a": OpCounter(), "b": OpCounter()})
        system.invoke("r1", "inc", (), obj="a")
        assert system.state("r1", "a") == 1
        assert system.state("r1", "b") == 0

    def test_global_visibility_across_objects(self):
        system = composed({"a": OpCounter(), "b": OpCounter()})
        first = system.invoke("r1", "inc", (), obj="a")
        second = system.invoke("r1", "inc", (), obj="b")
        assert system.history().sees(first, second)

    def test_causal_delivery_per_object_only(self):
        system = composed(
            {"a": OpCounter(), "b": OpCounter()}, replicas=("r1", "r2")
        )
        on_a = system.invoke("r1", "inc", (), obj="a")
        on_b = system.invoke("r1", "inc", (), obj="b")
        # b's op can be delivered before a's: causal delivery is per object.
        assert on_b in system.deliverable("r2")
        system.deliver("r2", on_b)
        assert system.state("r2", "b") == 1 and system.state("r2", "a") == 0


class TestComposedChecking:
    def test_composed_counter_history(self):
        system = composed_ts({"a": OpCounter(), "b": OpCounter()})
        system.invoke("r1", "inc", (), obj="a")
        system.invoke("r1", "inc", (), obj="b")
        system.deliver_all()
        system.invoke("r2", "read", (), obj="a")
        system.invoke("r2", "read", (), obj="b")
        result = check_composed_ra_linearizable(
            system.history(), {"a": CounterSpec(), "b": CounterSpec()}
        )
        assert result.ok

    def test_fig9_global_ra_linearizable(self):
        scenario = fig9_two_orsets()
        result = check_composed_ra_linearizable(
            scenario.history,
            {"o1": ORSetSpec(), "o2": ORSetSpec()},
            {"o1": ORSetRewriting(), "o2": ORSetRewriting()},
        )
        assert result.ok

    def test_fig9_specific_per_object_choice_fails(self):
        from repro.core.rewriting import rewrite_history
        from repro.runtime.composition import per_object_rewriting

        scenario = fig9_two_orsets()
        gammas = {"o1": ORSetRewriting(), "o2": ORSetRewriting()}
        rewritten = rewrite_history(
            scenario.history, per_object_rewriting(gammas)
        )
        g1, g2 = gammas["o1"], gammas["o2"]
        bad = {
            "o1": [g1.upd(scenario.labels["o1.add(c)"]),
                   g1.upd(scenario.labels["o1.add(d)"])],
            "o2": [g2.upd(scenario.labels["o2.add(a)"]),
                   g2.upd(scenario.labels["o2.add(b)"])],
        }
        assert combine_per_object(rewritten, bad) is None
        good = {
            "o1": [g1.upd(scenario.labels["o1.add(d)"]),
                   g1.upd(scenario.labels["o1.add(c)"])],
            "o2": bad["o2"],
        }
        merged = combine_per_object(rewritten, good)
        assert merged is not None
        assert [l.method for l in merged] == ["add"] * 4

    def test_fig10_independent_timestamps_not_linearizable(self):
        scenario = fig10_two_rgas(shared_timestamps=False)
        assert scenario.labels["o2.read"].ret == ("e", "d", "c")
        assert scenario.labels["o1.read"].ret == ("b", "a")
        result = check_composed_ra_linearizable(
            scenario.history, {"o1": RGASpec(), "o2": RGASpec()}
        )
        assert not result.ok

    def test_fig10_shared_timestamps_linearizable(self):
        scenario = fig10_two_rgas(shared_timestamps=True)
        result = check_composed_ra_linearizable(
            scenario.history, {"o1": RGASpec(), "o2": RGASpec()}
        )
        assert result.ok

    def test_fig10_pattern_unreachable_under_shared_clock(self):
        # Under ⊗ts the delivery of e bumps the shared clock, so a's
        # timestamp dominates e's — the paper's impossible pattern.
        scenario = fig10_two_rgas(shared_timestamps=True)
        a = scenario.labels["o1.addAfter(◦,a)"]
        e = scenario.labels["o2.addAfter(◦,e)"]
        assert e.ts < a.ts
        bad = fig10_two_rgas(shared_timestamps=False)
        a2, e2 = bad.labels["o1.addAfter(◦,a)"], bad.labels["o2.addAfter(◦,e)"]
        assert a2.ts < e2.ts


class TestCombinePerObject:
    def test_single_object_passthrough(self):
        a, b = Label("inc", obj="o"), Label("inc", obj="o")
        from repro.core.history import History

        h = History([a, b], [(a, b)])
        assert combine_per_object(h, {"o": [a, b]}) == [a, b]

    def test_respects_visibility(self):
        a = Label("inc", obj="o1")
        b = Label("inc", obj="o2")
        from repro.core.history import History

        h = History([a, b], [(a, b)])
        merged = combine_per_object(h, {"o1": [a], "o2": [b]})
        assert merged == [a, b]

    def test_deterministic_min_uid_order_pinned(self):
        # Regression for the Kahn's-algorithm rewrite: among the ready
        # labels the merge must always emit the lowest-uid one, exactly
        # as the old rescanning loop did.  This instance has several
        # valid topological orders; pin the one the old code produced.
        from repro.core.history import History

        x1 = Label("m", obj="o1")
        y1 = Label("m", obj="o2")
        x2 = Label("m", obj="o1")
        y2 = Label("m", obj="o2")
        h = History([x1, y1, x2, y2], [(x1, y2)])
        merged = combine_per_object(
            h, {"o1": [x1, x2], "o2": [y2, y1]}
        )
        # x1 unblocks y2 and x2; x2 has the smaller uid so goes first.
        assert merged == [x1, x2, y2, y1]

    def test_duplicate_edges_counted_once(self):
        # The same constraint arriving from both the visibility closure
        # and a per-object order must not double-count the indegree.
        from repro.core.history import History

        a = Label("m", obj="o1")
        b = Label("m", obj="o1")
        h = History([a, b], [(a, b)])
        assert combine_per_object(h, {"o1": [a, b]}) == [a, b]

    def test_vis_direction_decides_ties(self):
        from repro.core.history import History

        a = Label("m", obj="o1")
        b = Label("m", obj="o2")
        assert combine_per_object(
            History([a, b], [(b, a)]), {"o1": [a], "o2": [b]},
        ) == [b, a]

    def test_fig9_shape_cycle_is_none(self):
        # The canonical uncombinable shape: vis crosses the objects in
        # both directions against the chosen per-object orders.
        from repro.core.history import History

        a1 = Label("m", obj="o1")
        a2 = Label("m", obj="o2")
        b1 = Label("m", obj="o1")
        b2 = Label("m", obj="o2")
        h = History([a1, a2, b1, b2], [(a1, a2), (b2, b1)])
        assert combine_per_object(
            h, {"o1": [b1, a1], "o2": [a2, b2]}
        ) is None
