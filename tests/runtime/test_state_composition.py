"""Composition of state-based objects under a shared clock (Theorem 5.5)."""

import random

import pytest

from repro.core.ralin import check_ra_linearizable
from repro.core.spec import ComposedSpec
from repro.crdts import SBLWWElementSet, SBLWWRegister, SBPNCounter
from repro.runtime.state_composition import ComposedStateSystem
from repro.specs import CounterSpec, LWWRegisterSpec, SetSpec


class TestComposedStateSystem:
    def test_objects_isolated(self):
        system = ComposedStateSystem(
            {"counter": SBPNCounter(), "reg": SBLWWRegister()},
            replicas=("r1", "r2"),
        )
        system.invoke("r1", "inc", (), obj="counter")
        system.invoke("r1", "write", ("a",), obj="reg")
        assert system.invoke("r1", "read", (), obj="counter").ret == 1
        assert system.invoke("r1", "read", (), obj="reg").ret == "a"

    def test_shared_clock_spans_objects(self):
        system = ComposedStateSystem(
            {"set": SBLWWElementSet(), "reg": SBLWWRegister()},
            replicas=("r1",),
        )
        first = system.invoke("r1", "add", ("a",), obj="set")
        second = system.invoke("r1", "write", ("x",), obj="reg")
        assert first.ts < second.ts

    def test_gossip_propagates_all_objects(self):
        system = ComposedStateSystem(
            {"counter": SBPNCounter(), "reg": SBLWWRegister()},
            replicas=("r1", "r2"),
        )
        system.invoke("r1", "inc", (), obj="counter")
        system.invoke("r1", "write", ("a",), obj="reg")
        system.gossip("r1", "r2")
        assert system.invoke("r2", "read", (), obj="counter").ret == 1
        assert system.invoke("r2", "read", (), obj="reg").ret == "a"

    def test_cross_object_visibility(self):
        system = ComposedStateSystem(
            {"counter": SBPNCounter(), "reg": SBLWWRegister()},
            replicas=("r1",),
        )
        first = system.invoke("r1", "inc", (), obj="counter")
        second = system.invoke("r1", "write", ("a",), obj="reg")
        assert system.history().sees(first, second)

    def test_clock_advances_across_merges_and_objects(self):
        system = ComposedStateSystem(
            {"set": SBLWWElementSet(), "reg": SBLWWRegister()},
            replicas=("r1", "r2"),
        )
        add = system.invoke("r1", "add", ("a",), obj="set")
        system.gossip("r1", "r2")
        write = system.invoke("r2", "write", ("x",), obj="reg")
        assert add.ts < write.ts

    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_random_composed_execution_ra_linearizable(self, seed):
        rng = random.Random(seed)
        system = ComposedStateSystem(
            {"set": SBLWWElementSet(), "counter": SBPNCounter()},
            replicas=("r1", "r2"),
        )
        for _ in range(10):
            replica = rng.choice(system.replicas)
            obj = rng.choice(["set", "counter"])
            if obj == "set":
                method, args = rng.choice(
                    [("add", ("a",)), ("add", ("b",)),
                     ("remove", ("a",)), ("read", ())]
                )
            else:
                method, args = rng.choice(
                    [("inc", ()), ("dec", ()), ("read", ())]
                )
            system.invoke(replica, method, args, obj=obj)
            if rng.random() < 0.4:
                target = rng.choice(
                    [r for r in system.replicas if r != replica]
                )
                system.gossip(replica, target)
        system.sync_all()
        for replica in system.replicas:
            system.invoke(replica, "read", (), obj="set")
            system.invoke(replica, "read", (), obj="counter")
        spec = ComposedSpec({"set": SetSpec(), "counter": CounterSpec()})
        result = check_ra_linearizable(system.history(), spec)
        assert result.ok, result.reason
