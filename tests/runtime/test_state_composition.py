"""Composition of state-based objects under a shared clock (Theorem 5.5)."""

import random

import pytest

from repro.core.ralin import check_ra_linearizable
from repro.core.spec import ComposedSpec
from repro.crdts import SBLWWElementSet, SBLWWRegister, SBPNCounter
from repro.runtime.state_composition import ComposedStateSystem
from repro.specs import CounterSpec, LWWRegisterSpec, SetSpec


class TestComposedStateSystem:
    def test_objects_isolated(self):
        system = ComposedStateSystem(
            {"counter": SBPNCounter(), "reg": SBLWWRegister()},
            replicas=("r1", "r2"),
        )
        system.invoke("r1", "inc", (), obj="counter")
        system.invoke("r1", "write", ("a",), obj="reg")
        assert system.invoke("r1", "read", (), obj="counter").ret == 1
        assert system.invoke("r1", "read", (), obj="reg").ret == "a"

    def test_shared_clock_spans_objects(self):
        system = ComposedStateSystem(
            {"set": SBLWWElementSet(), "reg": SBLWWRegister()},
            replicas=("r1",),
        )
        first = system.invoke("r1", "add", ("a",), obj="set")
        second = system.invoke("r1", "write", ("x",), obj="reg")
        assert first.ts < second.ts

    def test_gossip_propagates_all_objects(self):
        system = ComposedStateSystem(
            {"counter": SBPNCounter(), "reg": SBLWWRegister()},
            replicas=("r1", "r2"),
        )
        system.invoke("r1", "inc", (), obj="counter")
        system.invoke("r1", "write", ("a",), obj="reg")
        system.gossip("r1", "r2")
        assert system.invoke("r2", "read", (), obj="counter").ret == 1
        assert system.invoke("r2", "read", (), obj="reg").ret == "a"

    def test_cross_object_visibility(self):
        system = ComposedStateSystem(
            {"counter": SBPNCounter(), "reg": SBLWWRegister()},
            replicas=("r1",),
        )
        first = system.invoke("r1", "inc", (), obj="counter")
        second = system.invoke("r1", "write", ("a",), obj="reg")
        assert system.history().sees(first, second)

    def test_clock_advances_across_merges_and_objects(self):
        system = ComposedStateSystem(
            {"set": SBLWWElementSet(), "reg": SBLWWRegister()},
            replicas=("r1", "r2"),
        )
        add = system.invoke("r1", "add", ("a",), obj="set")
        system.gossip("r1", "r2")
        write = system.invoke("r2", "write", ("x",), obj="reg")
        assert add.ts < write.ts

    def test_history_edges_pinned(self):
        # Visibility is now materialized lazily from per-label
        # seen-snapshots; the edge set must stay byte-identical to the
        # old eager construction (every prior label seen at the origin).
        system = ComposedStateSystem(
            {"counter": SBPNCounter(), "reg": SBLWWRegister()},
            replicas=("r1", "r2"),
        )
        a = system.invoke("r1", "inc", (), obj="counter")
        b = system.invoke("r1", "write", ("x",), obj="reg")
        system.gossip("r1", "r2")
        c = system.invoke("r2", "inc", (), obj="counter")
        d = system.invoke("r2", "read", (), obj="reg")
        history = system.history()
        assert history.labels == {a, b, c, d}
        assert set(history.vis) == {
            (a, b), (a, c), (b, c), (a, d), (b, d), (c, d)
        }

    def test_snapshot_restore_round_trip(self):
        system = ComposedStateSystem(
            {"counter": SBPNCounter(), "reg": SBLWWRegister()},
            replicas=("r1", "r2"),
        )
        system.invoke("r1", "inc", (), obj="counter")
        system.invoke("r1", "write", ("x",), obj="reg")
        system.gossip("r1", "r2")
        token = system.snapshot()
        before = system.history()
        first = system.invoke("r2", "write", ("y",), obj="reg")
        system.gossip("r2", "r1")
        system.restore(token)
        after = system.history()
        assert after.labels == before.labels
        assert set(after.vis) == set(before.vis)
        assert list(system.generation_order) == sorted(
            before.labels, key=lambda l: l.uid
        )
        assert system.state("r1", "counter") == system.state("r2", "counter")
        # The shared clock rewinds too: re-running the same op after a
        # restore regenerates the same timestamp (what the exploration
        # engine's snapshot protocol relies on).
        second = system.invoke("r2", "write", ("y",), obj="reg")
        assert second.ts == first.ts and second.ret == first.ret

    def test_restore_token_reusable(self):
        system = ComposedStateSystem(
            {"reg": SBLWWRegister()}, replicas=("r1",)
        )
        system.invoke("r1", "write", ("x",), obj="reg")
        token = system.snapshot()
        for _ in range(2):
            label = system.invoke("r1", "write", ("y",), obj="reg")
            assert label.ts.counter == 2
            system.restore(token)
        assert system.invoke("r1", "read", (), obj="reg").ret == "x"

    def test_receive_advances_shared_clock_from_cross_object_tags(self):
        # ⊗ts dominance (Fig. 11): only reg2's snapshot travels, but it
        # is tagged with the reg1 write — the shared clock must advance
        # past that cross-object timestamp so r1's next fresh timestamp
        # dominates everything the replica has heard of.
        system = ComposedStateSystem(
            {"reg1": SBLWWRegister(), "reg2": SBLWWRegister()},
            replicas=("r1", "r2"),
        )
        first = system.invoke("r2", "write", ("a",), obj="reg1")
        system.receive("r1", system.send("r2", "reg2"))
        second = system.invoke("r1", "write", ("b",), obj="reg1")
        assert first.ts < second.ts
        # ...and the causally-later write wins the LWW resolution once
        # the states actually merge.
        system.receive("r1", system.send("r2", "reg1"))
        assert system.invoke("r1", "read", (), obj="reg1").ret == "b"

    def test_independent_clocks_ignore_cross_object_tags(self):
        # Under ⊗ the cross-object anomaly is the point: the tag must
        # NOT advance reg1's generator.
        system = ComposedStateSystem(
            {"reg1": SBLWWRegister(), "reg2": SBLWWRegister()},
            replicas=("r1", "r2"),
            shared_timestamps=False,
        )
        first = system.invoke("r2", "write", ("a",), obj="reg1")
        system.receive("r1", system.send("r2", "reg2"))
        second = system.invoke("r1", "write", ("b",), obj="reg1")
        assert not first.ts < second.ts

    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_random_composed_execution_ra_linearizable(self, seed):
        rng = random.Random(seed)
        system = ComposedStateSystem(
            {"set": SBLWWElementSet(), "counter": SBPNCounter()},
            replicas=("r1", "r2"),
        )
        for _ in range(10):
            replica = rng.choice(system.replicas)
            obj = rng.choice(["set", "counter"])
            if obj == "set":
                method, args = rng.choice(
                    [("add", ("a",)), ("add", ("b",)),
                     ("remove", ("a",)), ("read", ())]
                )
            else:
                method, args = rng.choice(
                    [("inc", ()), ("dec", ()), ("read", ())]
                )
            system.invoke(replica, method, args, obj=obj)
            if rng.random() < 0.4:
                target = rng.choice(
                    [r for r in system.replicas if r != replica]
                )
                system.gossip(replica, target)
        system.sync_all()
        for replica in system.replicas:
            system.invoke(replica, "read", (), obj="set")
            system.invoke(replica, "read", (), obj="counter")
        spec = ComposedSpec({"set": SetSpec(), "counter": CounterSpec()})
        result = check_ra_linearizable(system.history(), spec)
        assert result.ok, result.reason
