"""The state-based operational semantics (Appendix D.2)."""

import pytest

from repro.core.errors import PreconditionViolation
from repro.crdts import SB2PSet, SBLWWElementSet, SBMVRegister, SBPNCounter
from repro.runtime import StateBasedSystem


class TestOperation:
    def test_local_update(self):
        system = StateBasedSystem(SBPNCounter(), replicas=("r1", "r2"))
        system.invoke("r1", "inc")
        assert system.invoke("r1", "read").ret == 1
        assert system.invoke("r2", "read").ret == 0

    def test_visibility_program_order(self):
        system = StateBasedSystem(SBPNCounter(), replicas=("r1",))
        a = system.invoke("r1", "inc")
        b = system.invoke("r1", "inc")
        assert system.history().sees(a, b)

    def test_precondition_enforced(self):
        system = StateBasedSystem(SB2PSet(), replicas=("r1",))
        with pytest.raises(PreconditionViolation):
            system.invoke("r1", "remove", ("ghost",))

    def test_events_logged(self):
        system = StateBasedSystem(SBPNCounter(), replicas=("r1",))
        system.invoke("r1", "inc")
        (event,) = system.events
        kind, replica, _label, pre, post = event
        assert kind == "op" and replica == "r1"
        assert pre != post


class TestGenerateApply:
    def test_gossip_transfers_state(self):
        system = StateBasedSystem(SBPNCounter(), replicas=("r1", "r2"))
        system.invoke("r1", "inc")
        system.gossip("r1", "r2")
        assert system.invoke("r2", "read").ret == 1

    def test_message_applied_twice_is_idempotent(self):
        system = StateBasedSystem(SBPNCounter(), replicas=("r1", "r2"))
        system.invoke("r1", "inc")
        message = system.send("r1")
        system.receive("r2", message)
        system.receive("r2", message)
        assert system.invoke("r2", "read").ret == 1

    def test_old_message_reordered(self):
        system = StateBasedSystem(SBPNCounter(), replicas=("r1", "r2"))
        system.invoke("r1", "inc")
        old = system.send("r1")
        system.invoke("r1", "inc")
        new = system.send("r1")
        system.receive("r2", new)
        system.receive("r2", old)  # stale message arrives later
        assert system.invoke("r2", "read").ret == 2

    def test_message_carries_labels(self):
        system = StateBasedSystem(SBPNCounter(), replicas=("r1", "r2"))
        inc = system.invoke("r1", "inc")
        system.gossip("r1", "r2")
        later = system.invoke("r2", "inc")
        assert system.history().sees(inc, later)

    def test_sync_all_converges(self):
        system = StateBasedSystem(SBMVRegister(), replicas=("r1", "r2", "r3"))
        system.invoke("r1", "write", ("a",))
        system.invoke("r2", "write", ("b",))
        system.sync_all()
        reads = {system.invoke(r, "read").ret for r in ("r1", "r2", "r3")}
        assert reads == {frozenset({"a", "b"})}

    def test_lost_message_no_effect(self):
        system = StateBasedSystem(SBPNCounter(), replicas=("r1", "r2"))
        system.invoke("r1", "inc")
        system.send("r1")  # never received
        assert system.invoke("r2", "read").ret == 0


class TestTimestampsAcrossMerges:
    def test_lamport_clock_advanced_by_merge(self):
        system = StateBasedSystem(SBLWWElementSet(), replicas=("r1", "r2"))
        add = system.invoke("r1", "add", ("a",))
        system.gossip("r1", "r2")
        remove = system.invoke("r2", "remove", ("a",))
        assert add.ts < remove.ts

    def test_lww_remove_wins_after_gossip(self):
        system = StateBasedSystem(SBLWWElementSet(), replicas=("r1", "r2"))
        system.invoke("r1", "add", ("a",))
        system.gossip("r1", "r2")
        system.invoke("r2", "remove", ("a",))
        system.sync_all()
        assert system.invoke("r1", "read").ret == frozenset()
