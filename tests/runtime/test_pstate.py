"""Persistent hash-trie unit tests: dissoc, transients, tier cells.

The PMap/PSet basics are exercised indirectly by every persistent-system
test; this file pins the operations added for the optimal-DPOR tiers —
deletion with canonical collapsing, single-owner transient batch builds,
and the mutable tier façades the steal sessions and fp_store hot tier
are built on.
"""

import random

import pytest

from repro.runtime.pstate import (
    STATS,
    MapTier,
    PMap,
    PSet,
    SetTier,
    TMap,
)


def _shape(pmap):
    """A structural render of the trie (not just its contents)."""

    def go(node):
        name = type(node).__name__
        if name == "_Node":
            return (node.bitmap, tuple(go(c) for c in node.array))
        if name == "_Leaf":
            return ("leaf", node.key, node.value)
        return ("bucket", node.hash, tuple(node.items))

    root = pmap._root
    return None if root is None else go(root)


def test_dissoc_against_model():
    rng = random.Random(1234)
    model = {}
    pmap = PMap()
    for _ in range(20000):
        key = rng.randrange(400)
        if rng.random() < 0.55:
            value = rng.randrange(1000)
            model[key] = value
            pmap = pmap.assoc(key, value)
        else:
            model.pop(key, None)
            pmap = pmap.dissoc(key)
        assert len(pmap) == len(model)
    assert dict(pmap.items()) == model


def test_dissoc_absent_is_identity():
    pmap = PMap.of({1: "a", 2: "b"})
    assert pmap.dissoc(99) is pmap
    empty = PMap()
    assert empty.dissoc(0) is empty


def test_dissoc_shares_untouched_structure():
    base = PMap.of({i: i for i in range(256)})
    shrunk = base.dissoc(0)
    assert 0 in base and 0 not in shrunk
    assert len(base) == 256 and len(shrunk) == 255


def test_dissoc_is_canonical():
    """Insert-then-delete leaves the same trie as never inserting."""
    direct = PMap()
    for key in range(100):
        direct = direct.assoc(key, key)
    detour = PMap()
    for key in range(200):
        detour = detour.assoc(key, key)
    for key in range(199, 99, -1):
        detour = detour.dissoc(key)
    assert _shape(direct) == _shape(detour)


def test_dissoc_to_empty():
    pmap = PMap.of({1: "a"})
    assert _shape(pmap.dissoc(1)) is None
    assert len(pmap.dissoc(1)) == 0


def test_dissoc_collision_bucket():
    class Clash:
        def __init__(self, tag):
            self.tag = tag

        def __hash__(self):
            return 42

        def __eq__(self, other):
            return isinstance(other, Clash) and self.tag == other.tag

    a, b, c = Clash("a"), Clash("b"), Clash("c")
    pmap = PMap().assoc(a, 1).assoc(b, 2).assoc(c, 3)
    pmap = pmap.dissoc(b)
    assert pmap.get(a) == 1 and pmap.get(c) == 3 and b not in pmap
    # Shrinking a bucket to one entry collapses it back to a leaf.
    pmap = pmap.dissoc(c)
    assert _shape(pmap) == ("leaf", a, 1)


def test_pset_discard():
    pset = PSet.of(range(100))
    assert pset.discard(999) is pset
    shrunk = pset.discard(50)
    assert 50 not in shrunk and 50 in pset
    assert len(shrunk) == 99


def test_transient_batch_build_equivalence():
    items = {f"k{i}": i for i in range(2000)}
    assert dict(PMap.of(items).items()) == items


def test_transient_preserves_source():
    base = PMap.of({i: i for i in range(500)})
    builder = base.transient()
    for i in range(500, 1000):
        builder.assoc(i, i)
    built = builder.persistent()
    assert len(base) == 500 and len(built) == 1000
    assert dict(base.items()) == {i: i for i in range(500)}
    assert built.get(750) == 750 and built.get(250) == 250


def test_transient_allocates_less_than_path_copying():
    items = {i: i for i in range(4096)}
    before = STATS.snapshot()
    builder = PMap().transient()
    for key, value in items.items():
        builder.assoc(key, value)
    builder.persistent()
    transient_copied = STATS.snapshot()[0] - before[0]
    before = STATS.snapshot()
    pmap = PMap()
    for key, value in items.items():
        pmap = pmap.assoc(key, value)
    path_copied = STATS.snapshot()[0] - before[0]
    assert transient_copied < path_copied / 2


def test_transient_frozen_after_persistent():
    builder = PMap().transient()
    builder.assoc(1, 1)
    builder.persistent()
    with pytest.raises(ValueError):
        builder.assoc(2, 2)


def test_transient_result_is_immutable_trie():
    built = PMap.of({i: i for i in range(100)})
    extended = built.assoc(100, 100)
    assert len(built) == 100 and len(extended) == 101
    assert isinstance(TMap(None, 0).persistent(), PMap)


def test_set_tier_snapshot_is_immutable():
    tier = SetTier()
    tier.add("a")
    snap = tier.snapshot()
    tier.add("b")
    assert "b" in tier and "a" in tier
    assert "b" not in snap and "a" in snap
    assert sorted(tier) == ["a", "b"]
    tier.discard("a")
    assert "a" not in tier and "a" in snap


def test_map_tier_setdefault_contract():
    tier = MapTier()
    record = tier.setdefault("fp", [])
    record.append("sleep-set")
    assert tier.setdefault("fp", []) == ["sleep-set"]
    assert len(tier) == 1 and "fp" in tier
    spine = tier.snapshot()
    tier.setdefault("fp2", [])
    assert "fp2" in tier and "fp2" not in spine
