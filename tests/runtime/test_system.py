"""The op-based operational semantics (Fig. 7)."""

import pytest

from repro.core.errors import PreconditionViolation, SchedulingError
from repro.core.sentinels import ROOT
from repro.core.timestamp import BOTTOM
from repro.crdts import OpCounter, OpORSet, OpRGA
from repro.runtime import OpBasedSystem


class TestInvoke:
    def test_effector_applied_at_origin_immediately(self):
        system = OpBasedSystem(OpCounter(), replicas=("r1", "r2"))
        system.invoke("r1", "inc")
        assert system.state("r1") == 1
        assert system.state("r2") == 0

    def test_label_carries_return_value(self):
        system = OpBasedSystem(OpCounter(), replicas=("r1",))
        system.invoke("r1", "inc")
        label = system.invoke("r1", "read")
        assert label.ret == 1

    def test_visibility_records_local_history(self):
        system = OpBasedSystem(OpCounter(), replicas=("r1", "r2"))
        first = system.invoke("r1", "inc")
        second = system.invoke("r1", "inc")
        other = system.invoke("r2", "inc")
        h = system.history()
        assert h.sees(first, second)
        assert h.concurrent(second, other)

    def test_precondition_enforced(self):
        system = OpBasedSystem(OpRGA(), replicas=("r1",))
        with pytest.raises(PreconditionViolation):
            system.invoke("r1", "addAfter", ("ghost", "a"))

    def test_timestamps_exceed_visible(self):
        system = OpBasedSystem(OpRGA(), replicas=("r1", "r2"))
        first = system.invoke("r1", "addAfter", (ROOT, "a"))
        system.deliver_all()
        second = system.invoke("r2", "addAfter", ("a", "b"))
        assert first.ts < second.ts

    def test_queries_get_bottom_timestamp(self):
        system = OpBasedSystem(OpRGA(), replicas=("r1",))
        system.invoke("r1", "addAfter", (ROOT, "a"))
        read = system.invoke("r1", "read")
        assert read.ts is BOTTOM

    def test_unknown_object_rejected(self):
        system = OpBasedSystem(OpCounter(), replicas=("r1",))
        with pytest.raises(SchedulingError):
            system.invoke("r1", "inc", (), obj="nope")

    def test_multi_object_requires_name(self):
        system = OpBasedSystem(
            {"a": OpCounter(), "b": OpCounter()}, replicas=("r1",)
        )
        with pytest.raises(SchedulingError):
            system.invoke("r1", "inc")


class TestDelivery:
    def test_deliver_applies_effector(self):
        system = OpBasedSystem(OpCounter(), replicas=("r1", "r2"))
        label = system.invoke("r1", "inc")
        system.deliver("r2", label)
        assert system.state("r2") == 1

    def test_deliver_twice_rejected(self):
        system = OpBasedSystem(OpCounter(), replicas=("r1", "r2"))
        label = system.invoke("r1", "inc")
        system.deliver("r2", label)
        with pytest.raises(SchedulingError):
            system.deliver("r2", label)

    def test_deliver_at_origin_rejected(self):
        system = OpBasedSystem(OpCounter(), replicas=("r1", "r2"))
        label = system.invoke("r1", "inc")
        with pytest.raises(SchedulingError):
            system.deliver("r1", label)

    def test_causal_delivery_enforced(self):
        system = OpBasedSystem(OpRGA(), replicas=("r1", "r2"))
        first = system.invoke("r1", "addAfter", (ROOT, "a"))
        second = system.invoke("r1", "addAfter", ("a", "b"))
        assert second not in system.deliverable("r2")
        with pytest.raises(SchedulingError):
            system.deliver("r2", second)
        system.deliver("r2", first)
        system.deliver("r2", second)
        assert system.state("r2") == system.state("r1")

    def test_deliver_all_reaches_quiescence(self):
        system = OpBasedSystem(OpCounter(), replicas=("r1", "r2", "r3"))
        for _ in range(3):
            system.invoke("r1", "inc")
            system.invoke("r2", "dec")
        system.deliver_all()
        assert system.pending_count() == 0
        states = {system.state(r) for r in ("r1", "r2", "r3")}
        assert states == {0}

    def test_query_effectors_are_delivered_for_visibility(self):
        # Queries produce identity effectors; delivering them propagates
        # their place in the visibility order (Fig. 7 semantics).
        system = OpBasedSystem(OpCounter(), replicas=("r1", "r2"))
        system.invoke("r1", "inc")
        read = system.invoke("r1", "read")
        system.deliver_all()
        later = system.invoke("r2", "inc")
        assert system.history().sees(read, later)

    def test_sync_single_replica(self):
        system = OpBasedSystem(OpCounter(), replicas=("r1", "r2", "r3"))
        system.invoke("r1", "inc")
        system.sync("r2")
        assert system.state("r2") == 1
        assert system.state("r3") == 0


class TestObservation:
    def test_history_labels_complete(self):
        system = OpBasedSystem(OpCounter(), replicas=("r1", "r2"))
        labels = [system.invoke("r1", "inc"), system.invoke("r2", "read")]
        assert set(system.history().labels) == set(labels)

    def test_generation_order(self):
        system = OpBasedSystem(OpCounter(), replicas=("r1", "r2"))
        a = system.invoke("r1", "inc")
        b = system.invoke("r2", "inc")
        assert system.generation_order == [a, b]

    def test_replica_views_for_convergence(self):
        system = OpBasedSystem(OpCounter(), replicas=("r1", "r2"))
        system.invoke("r1", "inc")
        system.deliver_all()
        views = system.replica_views()
        assert views["r1"][0] == views["r2"][0]
        assert views["r1"][1] == views["r2"][1] == 1

    def test_effector_of(self):
        system = OpBasedSystem(OpCounter(), replicas=("r1",))
        inc = system.invoke("r1", "inc")
        read = system.invoke("r1", "read")
        assert system.effector_of(inc) is not None
        assert system.effector_of(read) is None


class TestSharedTimestamps:
    def test_shared_clock_spans_objects(self):
        system = OpBasedSystem(
            {"o1": OpRGA(), "o2": OpRGA()},
            replicas=("r1",),
            shared_timestamps=True,
        )
        first = system.invoke("r1", "addAfter", (ROOT, "a"), obj="o1")
        second = system.invoke("r1", "addAfter", (ROOT, "b"), obj="o2")
        assert first.ts < second.ts

    def test_independent_clocks_may_collide(self):
        system = OpBasedSystem(
            {"o1": OpRGA(), "o2": OpRGA()},
            replicas=("r1",),
            shared_timestamps=False,
        )
        first = system.invoke("r1", "addAfter", (ROOT, "a"), obj="o1")
        second = system.invoke("r1", "addAfter", (ROOT, "b"), obj="o2")
        assert first.ts == second.ts  # same (counter, replica) pair


class TestOutstanding:
    def test_outstanding_counts_unseen_labels(self):
        system = OpBasedSystem(OpCounter(), replicas=("r1", "r2", "r3"))
        label = system.invoke("r1", "inc")
        # Unseen at r2 and r3; the origin has seen its own label.
        assert system.outstanding_count() == 2
        system.deliver("r2", label)
        assert system.outstanding_count() == 1
        system.deliver("r3", label)
        assert system.outstanding_count() == 0

    def test_outstanding_includes_causally_blocked(self):
        # pending_count() only counts labels deliverable *right now*; a
        # causally-blocked label is invisible to it but must still count
        # as outstanding, else quiescence checks exit early.
        system = OpBasedSystem(OpRGA(), replicas=("r1", "r2"))
        first = system.invoke("r1", "addAfter", (ROOT, "a"))
        second = system.invoke("r1", "addAfter", ("a", "b"))
        assert system.deliverable("r2") == [first]
        assert system.pending_count() == 1  # only `first` right now
        assert system.outstanding_count() == 2  # `second` counts too

    def test_quiescent_system_has_none_outstanding(self):
        system = OpBasedSystem(OpCounter(), replicas=("r1", "r2"))
        system.invoke("r1", "inc")
        system.invoke("r2", "dec")
        system.deliver_all()
        assert system.outstanding_count() == 0
