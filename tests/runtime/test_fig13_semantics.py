"""Fig. 13: the worked example of the op-based semantics on RGA."""

from repro.core.sentinels import ROOT
from repro.crdts import OpRGA
from repro.crdts.opbased.rga import traverse
from repro.runtime import OpBasedSystem


class TestFig13:
    def build(self):
        system = OpBasedSystem(OpRGA(), replicas=("r1", "r2"))
        a = system.invoke("r1", "addAfter", (ROOT, "a"))
        b = system.invoke("r2", "addAfter", (ROOT, "b"))
        system.deliver("r1", b)
        system.deliver("r2", a)
        c = system.invoke("r1", "addAfter", ("b", "c"))
        d = system.invoke("r2", "addAfter", ("b", "d"))
        return system, a, b, c, d

    def test_13a_before_delivery_of_d(self):
        system, a, b, c, d = self.build()
        # r1 has seen a, b, c but not d.
        assert system.seen("r1") == {a, b, c}
        nodes, tombs = system.state("r1")
        assert ("b", c.ts, "c") in nodes or (b.args[1], c.ts, "c") in nodes
        assert tombs == frozenset()
        h = system.history()
        assert h.sees(a, c) and h.sees(b, c) and h.sees(b, d)
        assert h.concurrent(c, d)

    def test_13b_after_delivery_of_d(self):
        system, a, b, c, d = self.build()
        before = system.history()
        system.deliver("r1", d)
        # Delivery extends L but not vis (vis grows only at generators).
        assert system.seen("r1") == {a, b, c, d}
        assert system.history() == before

    def test_13c_remove_extends_visibility(self):
        system, a, b, c, d = self.build()
        system.deliver("r1", d)
        rem = system.invoke("r1", "remove", ("b",))
        _nodes, tombs = system.state("r1")
        assert tombs == frozenset({"b"})
        h = system.history()
        for earlier in (a, b, c, d):
            assert h.sees(earlier, rem)

    def test_final_convergence(self):
        system, a, b, c, d = self.build()
        system.deliver("r1", d)
        system.invoke("r1", "remove", ("b",))
        system.deliver_all()
        assert system.state("r1") == system.state("r2")
        assert traverse(*system.state("r1")) == traverse(*system.state("r2"))
