"""Spec(MV-Reg) and its rewriting — Appendix D.3/E.1."""

from repro.core.label import Label
from repro.core.timestamp import VersionVector
from repro.specs import MVRegisterRewriting, MVRegisterSpec


def vv(**entries):
    return VersionVector.of(entries)


class TestMVRegisterSpec:
    def setup_method(self):
        self.spec = MVRegisterSpec()

    def test_write_on_empty(self):
        label = Label("write", ("a", vv(r1=1)))
        assert list(self.spec.step(frozenset(), label)) == [
            frozenset({("a", vv(r1=1))})
        ]

    def test_write_evicts_dominated(self):
        state = frozenset({("a", vv(r1=1))})
        label = Label("write", ("b", vv(r1=2)))
        assert list(self.spec.step(state, label)) == [
            frozenset({("b", vv(r1=2))})
        ]

    def test_concurrent_writes_coexist(self):
        state = frozenset({("a", vv(r1=1))})
        label = Label("write", ("b", vv(r2=1)))
        (result,) = self.spec.step(state, label)
        assert result == frozenset({("a", vv(r1=1)), ("b", vv(r2=1))})

    def test_dominated_write_rejected(self):
        state = frozenset({("a", vv(r1=2))})
        label = Label("write", ("b", vv(r1=1)))
        assert not self.spec.step(state, label)

    def test_equal_id_write_rejected(self):
        state = frozenset({("a", vv(r1=1))})
        label = Label("write", ("b", vv(r1=1)))
        assert not self.spec.step(state, label)

    def test_read_returns_all_values(self):
        state = frozenset({("a", vv(r1=1)), ("b", vv(r2=1))})
        assert self.spec.step(state, Label("read", ret={"a", "b"}))
        assert not self.spec.step(state, Label("read", ret={"a"}))

    def test_multi_value_then_overwrite(self):
        seq = [
            Label("write", ("a", vv(r1=1))),
            Label("write", ("b", vv(r2=1))),
            Label("read", ret={"a", "b"}),
            Label("write", ("c", vv(r1=2, r2=2))),
            Label("read", ret={"c"}),
        ]
        assert MVRegisterSpec().admits(seq)


class TestMVRegisterRewriting:
    def test_write_folds_version_vector(self):
        gamma = MVRegisterRewriting()
        write = Label("write", ("a",), ret=vv(r1=1))
        (image,) = gamma.rewrite(write)
        assert image.method == "write"
        assert image.args == ("a", vv(r1=1))
        assert image.ret is None

    def test_read_untouched(self):
        gamma = MVRegisterRewriting()
        read = Label("read", ret=frozenset({"a"}))
        assert gamma.rewrite(read) == (read,)

    def test_cached(self):
        gamma = MVRegisterRewriting()
        write = Label("write", ("a",), ret=vv(r1=1))
        assert gamma.rewrite(write)[0] is gamma.rewrite(write)[0]
