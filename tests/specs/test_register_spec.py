"""Spec(Reg) — Appendix B.2."""

from repro.core.label import Label
from repro.specs import LWWRegisterSpec


class TestLWWRegisterSpec:
    def test_initial_default_none(self):
        assert LWWRegisterSpec().initial() is None

    def test_initial_custom(self):
        assert LWWRegisterSpec(initial_value="x0").initial() == "x0"

    def test_write_replaces(self):
        spec = LWWRegisterSpec()
        assert list(spec.step(None, Label("write", ("a",)))) == ["a"]
        assert list(spec.step("a", Label("write", ("b",)))) == ["b"]

    def test_read_matches(self):
        spec = LWWRegisterSpec()
        assert spec.step("a", Label("read", ret="a"))
        assert not spec.step("a", Label("read", ret="b"))

    def test_last_write_wins_in_sequence(self):
        spec = LWWRegisterSpec()
        seq = [
            Label("write", ("a",)),
            Label("write", ("b",)),
            Label("read", ret="b"),
        ]
        assert spec.admits(seq)

    def test_read_initial(self):
        spec = LWWRegisterSpec(initial_value="x0")
        assert spec.admits([Label("read", ret="x0")])
