"""Plain Spec(Set)."""

from repro.core.label import Label
from repro.specs import SetSpec


class TestSetSpec:
    def setup_method(self):
        self.spec = SetSpec()

    def test_initial_empty(self):
        assert self.spec.initial() == frozenset()

    def test_add(self):
        assert list(self.spec.step(frozenset(), Label("add", ("a",)))) == [
            frozenset({"a"})
        ]

    def test_add_idempotent_on_state(self):
        state = frozenset({"a"})
        assert list(self.spec.step(state, Label("add", ("a",)))) == [state]

    def test_remove(self):
        state = frozenset({"a", "b"})
        assert list(self.spec.step(state, Label("remove", ("a",)))) == [
            frozenset({"b"})
        ]

    def test_remove_absent_is_noop(self):
        assert list(self.spec.step(frozenset(), Label("remove", ("a",)))) == [
            frozenset()
        ]

    def test_read_matches(self):
        state = frozenset({"a"})
        assert self.spec.step(state, Label("read", ret={"a"}))

    def test_read_mismatch(self):
        assert not self.spec.step(frozenset({"a"}), Label("read", ret=set()))

    def test_add_remove_add(self):
        seq = [
            Label("add", ("a",)),
            Label("remove", ("a",)),
            Label("add", ("a",)),
            Label("read", ret={"a"}),
        ]
        assert self.spec.admits(seq)
