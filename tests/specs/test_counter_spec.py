"""Spec(Counter) — Example 3.2."""

from repro.core.label import Label
from repro.specs import CounterSpec


class TestCounterSpec:
    def setup_method(self):
        self.spec = CounterSpec()

    def test_initial_zero(self):
        assert self.spec.initial() == 0

    def test_inc(self):
        assert list(self.spec.step(0, Label("inc"))) == [1]

    def test_dec(self):
        assert list(self.spec.step(0, Label("dec"))) == [-1]

    def test_dec_below_zero_allowed(self):
        assert self.spec.admits([Label("dec"), Label("read", ret=-1)])

    def test_read_matches(self):
        assert list(self.spec.step(5, Label("read", ret=5))) == [5]

    def test_read_mismatch_rejected(self):
        assert list(self.spec.step(5, Label("read", ret=4))) == []

    def test_inc_dec_cancel(self):
        seq = [Label("inc"), Label("dec"), Label("read", ret=0)]
        assert self.spec.admits(seq)

    def test_long_sequence(self):
        seq = [Label("inc") for _ in range(10)] + [Label("read", ret=10)]
        assert self.spec.admits(seq)
