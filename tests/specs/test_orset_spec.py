"""Spec(OR-Set) — Example 3.4."""

from repro.core.label import Label
from repro.specs import ORSetSpec


class TestORSetSpec:
    def setup_method(self):
        self.spec = ORSetSpec()

    def test_add_with_fresh_id(self):
        result = list(self.spec.step(frozenset(), Label("add", ("a", 1))))
        assert result == [frozenset({("a", 1)})]

    def test_add_duplicate_pair_rejected(self):
        state = frozenset({("a", 1)})
        assert not self.spec.step(state, Label("add", ("a", 1)))

    def test_add_same_element_new_id(self):
        state = frozenset({("a", 1)})
        result = list(self.spec.step(state, Label("add", ("a", 2))))
        assert result == [frozenset({("a", 1), ("a", 2)})]

    def test_remove_erases_only_given_pairs(self):
        state = frozenset({("a", 1), ("a", 2)})
        label = Label("remove", (frozenset({("a", 1)}),))
        assert list(self.spec.step(state, label)) == [frozenset({("a", 2)})]

    def test_remove_empty_set_noop(self):
        state = frozenset({("a", 1)})
        assert list(self.spec.step(state, Label("remove", (frozenset(),)))) == [
            state
        ]

    def test_readids_returns_pairs_of_element(self):
        state = frozenset({("a", 1), ("b", 2), ("a", 3)})
        good = Label("readIds", ("a",), ret=frozenset({("a", 1), ("a", 3)}))
        bad = Label("readIds", ("a",), ret=frozenset({("a", 1)}))
        assert self.spec.step(state, good)
        assert not self.spec.step(state, bad)

    def test_read_projects_elements(self):
        state = frozenset({("a", 1), ("b", 2)})
        assert self.spec.step(state, Label("read", ret={"a", "b"}))
        assert not self.spec.step(state, Label("read", ret={"a"}))

    def test_add_survives_unrelated_remove(self):
        # The Fig. 4 "add wins" scenario at the spec level.
        seq = [
            Label("add", ("a", 1)),
            Label("add", ("a", 2)),
            Label("remove", (frozenset({("a", 1)}),)),
            Label("read", ret={"a"}),
        ]
        assert self.spec.admits(seq)
