"""The three addAt list specifications — Appendix C."""

from repro.core.label import Label
from repro.specs import AddAt1Spec, AddAt2Spec, AddAt3Spec


class TestAddAt1:
    def setup_method(self):
        self.spec = AddAt1Spec()

    def test_insert_at_index(self):
        (state,) = self.spec.step((), Label("addAt", ("a", 0)))
        assert state == ("a",)
        (state,) = self.spec.step(("a", "b"), Label("addAt", ("x", 1)))
        assert state == ("a", "x", "b")

    def test_index_past_end_appends(self):
        (state,) = self.spec.step(("a",), Label("addAt", ("x", 9)))
        assert state == ("a", "x")

    def test_duplicate_rejected(self):
        assert not self.spec.step(("a",), Label("addAt", ("a", 0)))

    def test_remove_physical(self):
        (state,) = self.spec.step(("a", "b"), Label("remove", ("a",)))
        assert state == ("b",)

    def test_remove_missing_rejected(self):
        assert not self.spec.step((), Label("remove", ("a",)))

    def test_read(self):
        assert self.spec.step(("a",), Label("read", ret=("a",)))
        assert not self.spec.step(("a",), Label("read", ret=()))


class TestAddAt2:
    def setup_method(self):
        self.spec = AddAt2Spec()

    def test_insert_counts_live_elements(self):
        state = (("a", "b"), frozenset({"a"}))  # live list is (b,)
        results = list(self.spec.step(state, Label("addAt", ("x", 1))))
        sequences = {seq for seq, _ in results}
        assert sequences == {("a", "b", "x")}

    def test_nondeterminism_around_tombstones(self):
        state = (("a", "b"), frozenset({"a"}))  # live (b,)
        results = list(self.spec.step(state, Label("addAt", ("x", 0))))
        sequences = {seq for seq, _ in results}
        # x can go before or after the tombstoned a (live index 0 both ways).
        assert sequences == {("x", "a", "b"), ("a", "x", "b")}

    def test_live_index_past_end_appends(self):
        state = (("a",), frozenset())
        results = list(self.spec.step(state, Label("addAt", ("x", 5))))
        assert (("a", "x"), frozenset()) in results

    def test_remove_tombstones(self):
        state = (("a",), frozenset())
        (result,) = self.spec.step(state, Label("remove", ("a",)))
        assert result == (("a",), frozenset({"a"}))

    def test_read_hides_tombstones(self):
        state = (("a", "b"), frozenset({"a"}))
        assert self.spec.step(state, Label("read", ret=("b",)))

    def test_lemma_c1_inclusion(self):
        # When each value is removed at most once, sequences admitted by
        # Spec(addAt2) are admitted by Spec(addAt1) (Lemma C.1's argument).
        seq = [
            Label("addAt", ("a", 0)),
            Label("addAt", ("b", 0)),
            Label("remove", ("b",)),
            Label("addAt", ("c", 1)),
            Label("read", ret=("a", "c")),
        ]
        assert AddAt2Spec().admits(seq) == AddAt1Spec().admits(seq) is True


class TestAddAt3:
    def setup_method(self):
        self.spec = AddAt3Spec()

    def test_insert_with_full_view(self):
        state = (("a", "b"), frozenset())
        label = Label("addAt", ("x", 1), ret=("a", "x", "b"))
        (result,) = self.spec.step(state, label)
        assert result[0] == ("a", "x", "b")

    def test_insert_with_partial_view(self):
        # Origin saw only (b,) out of (a, b): inserting x at 1 anchors at b.
        state = (("a", "b"), frozenset())
        label = Label("addAt", ("x", 1), ret=("b", "x"))
        (result,) = self.spec.step(state, label)
        assert result[0] == ("a", "b", "x")

    def test_view_must_be_subsequence(self):
        state = (("a", "b"), frozenset())
        label = Label("addAt", ("x", 1), ret=("z", "x"))
        assert not self.spec.step(state, label)

    def test_index_mismatch_rejected(self):
        state = (("a", "b"), frozenset())
        label = Label("addAt", ("x", 2), ret=("a", "x", "b"))
        assert not self.spec.step(state, label)

    def test_index_past_view_end(self):
        state = (("a", "b"), frozenset())
        label = Label("addAt", ("x", 9), ret=("a", "b", "x"))
        (result,) = self.spec.step(state, label)
        assert result[0] == ("a", "b", "x")

    def test_empty_view_head_insert(self):
        label = Label("addAt", ("a", 0), ret=("a",))
        (result,) = self.spec.step(((), frozenset()), label)
        assert result[0] == ("a",)

    def test_head_insert_on_nonempty(self):
        state = (("a",), frozenset())
        label = Label("addAt", ("x", 0), ret=("x", "a"))
        (result,) = self.spec.step(state, label)
        assert result[0] == ("x", "a")

    def test_remove_returns_view_without_value(self):
        state = (("a", "b"), frozenset())
        good = Label("remove", ("a",), ret=("b",))
        bad = Label("remove", ("a",), ret=("a", "b"))
        (result,) = self.spec.step(state, good)
        assert result == (("a", "b"), frozenset({"a"}))
        assert not self.spec.step(state, bad)

    def test_read(self):
        state = (("a", "b"), frozenset({"b"}))
        assert self.spec.step(state, Label("read", ret=("a",)))
