"""Spec(Wooki) — Appendix B.3 (nondeterministic addBetween)."""

from repro.core.label import Label
from repro.core.sentinels import BEGIN, END
from repro.specs import WookiSpec


class TestWookiSpec:
    def setup_method(self):
        self.spec = WookiSpec()

    def test_initial(self):
        assert self.spec.initial() == ((BEGIN, END), frozenset())

    def test_insert_between_sentinels(self):
        results = list(
            self.spec.step(self.spec.initial(), Label("addBetween", (BEGIN, "a", END)))
        )
        assert results == [((BEGIN, "a", END), frozenset())]

    def test_nondeterministic_positions(self):
        state = ((BEGIN, "a", "b", "c", END), frozenset())
        results = list(
            self.spec.step(state, Label("addBetween", ("a", "x", END)))
        )
        sequences = {seq for seq, _ in results}
        assert sequences == {
            (BEGIN, "a", "x", "b", "c", END),
            (BEGIN, "a", "b", "x", "c", END),
            (BEGIN, "a", "b", "c", "x", END),
        }

    def test_adjacent_anchors_single_position(self):
        state = ((BEGIN, "a", "b", END), frozenset())
        results = list(
            self.spec.step(state, Label("addBetween", ("a", "x", "b")))
        )
        assert len(results) == 1
        assert results[0][0] == (BEGIN, "a", "x", "b", END)

    def test_before_begin_rejected(self):
        state = ((BEGIN, "a", END), frozenset())
        assert not self.spec.step(state, Label("addBetween", ("a", "x", BEGIN)))

    def test_after_end_rejected(self):
        state = ((BEGIN, "a", END), frozenset())
        assert not self.spec.step(state, Label("addBetween", (END, "x", "a")))

    def test_reversed_anchors_rejected(self):
        state = ((BEGIN, "a", "b", END), frozenset())
        assert not self.spec.step(state, Label("addBetween", ("b", "x", "a")))

    def test_duplicate_value_rejected(self):
        state = ((BEGIN, "a", END), frozenset())
        assert not self.spec.step(state, Label("addBetween", (BEGIN, "a", END)))

    def test_remove_and_read(self):
        state = ((BEGIN, "a", "b", END), frozenset())
        (removed,) = self.spec.step(state, Label("remove", ("a",)))
        assert removed == ((BEGIN, "a", "b", END), frozenset({"a"}))
        assert self.spec.step(removed, Label("read", ret=("b",)))

    def test_remove_sentinel_rejected(self):
        assert not self.spec.step(self.spec.initial(), Label("remove", (BEGIN,)))

    def test_insert_between_removed_anchors_allowed(self):
        state = ((BEGIN, "a", "b", END), frozenset({"a", "b"}))
        results = list(self.spec.step(state, Label("addBetween", ("a", "x", "b"))))
        assert results
