"""Spec(RGA) — Example 3.3."""

from repro.core.label import Label
from repro.core.sentinels import ROOT
from repro.specs import RGASpec


class TestRGASpec:
    def setup_method(self):
        self.spec = RGASpec()

    def test_initial(self):
        assert self.spec.initial() == ((ROOT,), frozenset())

    def test_add_after_root(self):
        (state,) = self.spec.step(
            self.spec.initial(), Label("addAfter", (ROOT, "a"))
        )
        assert state == ((ROOT, "a"), frozenset())

    def test_add_after_element(self):
        state = ((ROOT, "a", "b"), frozenset())
        (result,) = self.spec.step(state, Label("addAfter", ("a", "x")))
        assert result[0] == (ROOT, "a", "x", "b")

    def test_add_missing_anchor_rejected(self):
        assert not self.spec.step(
            self.spec.initial(), Label("addAfter", ("ghost", "a"))
        )

    def test_add_duplicate_value_rejected(self):
        state = ((ROOT, "a"), frozenset())
        assert not self.spec.step(state, Label("addAfter", (ROOT, "a")))

    def test_add_after_tombstoned_anchor_allowed(self):
        # The spec keeps removed elements in l; adding after them is legal
        # (a concurrent remove may linearize earlier).
        state = ((ROOT, "a"), frozenset({"a"}))
        (result,) = self.spec.step(state, Label("addAfter", ("a", "b")))
        assert result == ((ROOT, "a", "b"), frozenset({"a"}))

    def test_remove(self):
        state = ((ROOT, "a"), frozenset())
        (result,) = self.spec.step(state, Label("remove", ("a",)))
        assert result == ((ROOT, "a"), frozenset({"a"}))

    def test_remove_root_rejected(self):
        assert not self.spec.step(self.spec.initial(), Label("remove", (ROOT,)))

    def test_remove_missing_rejected(self):
        assert not self.spec.step(self.spec.initial(), Label("remove", ("a",)))

    def test_read_hides_tombstones_and_root(self):
        state = ((ROOT, "a", "b"), frozenset({"a"}))
        assert self.spec.step(state, Label("read", ret=("b",)))
        assert not self.spec.step(state, Label("read", ret=("a", "b")))

    def test_example_33_sequence(self):
        # addAfter(◦,a) · addAfter(a,c) · addAfter(a,b) ⇒ read a·b·c
        seq = [
            Label("addAfter", (ROOT, "a")),
            Label("addAfter", ("a", "c")),
            Label("addAfter", ("a", "b")),
            Label("read", ret=("a", "b", "c")),
        ]
        assert self.spec.admits(seq)
