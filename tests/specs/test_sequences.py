"""Sequence helpers used by the list specifications."""

import pytest

from repro.specs.sequences import insert_after, insert_at, is_subsequence, without


class TestIsSubsequence:
    def test_empty_always(self):
        assert is_subsequence((), ("a", "b"))
        assert is_subsequence((), ())

    def test_identity(self):
        assert is_subsequence(("a", "b"), ("a", "b"))

    def test_gaps(self):
        assert is_subsequence(("a", "c"), ("a", "b", "c"))

    def test_order_matters(self):
        assert not is_subsequence(("c", "a"), ("a", "b", "c"))

    def test_missing_element(self):
        assert not is_subsequence(("z",), ("a", "b"))


class TestWithout:
    def test_removes_all_occurrences(self):
        assert without(("a", "b", "a"), {"a"}) == ("b",)

    def test_empty_removed(self):
        assert without(("a",), set()) == ("a",)


class TestInsertAfter:
    def test_inserts(self):
        assert insert_after(("a", "b"), "a", "x") == ("a", "x", "b")

    def test_at_end(self):
        assert insert_after(("a",), "a", "x") == ("a", "x")

    def test_missing_anchor_raises(self):
        with pytest.raises(ValueError):
            insert_after(("a",), "z", "x")


class TestInsertAt:
    def test_positions(self):
        assert insert_at(("a", "b"), 0, "x") == ("x", "a", "b")
        assert insert_at(("a", "b"), 1, "x") == ("a", "x", "b")
        assert insert_at(("a", "b"), 2, "x") == ("a", "b", "x")
