"""Fig. 2/3: RGA conflict resolution walkthrough."""

from repro.core.ralin import check_ra_linearizable, timestamp_order_check
from repro.scenarios import fig2_rga_conflict
from repro.specs import RGASpec


class TestFig2:
    def setup_method(self):
        self.scenario = fig2_rga_conflict()

    def test_concurrent_inserts_converge(self):
        system = self.scenario.system
        assert system.state("r1") == system.state("r2")

    def test_final_read_after_remove(self):
        # d and e inserted after c concurrently; d removed: a·b·c·e.
        assert self.scenario.labels["read"].ret == ("a", "b", "c", "e")

    def test_higher_timestamp_sibling_first(self):
        ld = self.scenario.labels["addAfter(c,d)"]
        le = self.scenario.labels["addAfter(c,e)"]
        # Whichever got the higher timestamp comes first among siblings —
        # read (before remove delivery) would show it first.  With the
        # builder's ordering, e (r2) has the higher timestamp.
        assert ld.ts < le.ts

    def test_history_ra_linearizable(self):
        assert check_ra_linearizable(self.scenario.history, RGASpec()).ok

    def test_timestamp_order_check(self):
        result = timestamp_order_check(
            self.scenario.history, RGASpec(),
            self.scenario.system.generation_order,
        )
        assert result.ok

    def test_history_shape_matches_fig3(self):
        h = self.scenario.history
        labels = self.scenario.labels
        assert h.sees(labels["addAfter(◦,a)"], labels["addAfter(a,b)"])
        assert h.sees(labels["addAfter(a,c)"], labels["addAfter(c,d)"])
        assert h.sees(labels["addAfter(a,c)"], labels["addAfter(c,e)"])
        assert h.concurrent(labels["addAfter(c,d)"], labels["addAfter(c,e)"])
        assert h.sees(labels["addAfter(c,d)"], labels["remove(d)"])
