"""Larger-scale soak runs: more replicas, more operations, more seeds.

The per-figure tests pin exact behaviours; these runs push volume through
the whole stack (workloads → runtime → candidate checkers → convergence)
at sizes the brute-force checker could not handle, relying on the
polynomial EO/TO candidate constructions.
"""

import pytest

from repro.core.convergence import check_convergence
from repro.core.ralin import execution_order_check, timestamp_order_check
from repro.core.sessions import check_session_guarantees
from repro.core.stats import history_stats
from repro.proofs.registry import entry_by_name
from repro.runtime import random_op_execution, random_state_execution

SOAK = [
    ("OR-Set", 40, 5),
    ("RGA", 40, 5),
    # Wooki's *nondeterministic* spec has exponentially many reachable
    # states in the insert count; ~15 updates is the tractable frontier
    # (past it, replay raises the frontier-limit guard instead of OOMing).
    ("Wooki", 15, 3),
    ("LWW-Element Set", 40, 5),
    ("Multi-Value Reg.", 40, 5),
]


@pytest.mark.parametrize("name,operations,replicas", SOAK,
                         ids=[s[0] for s in SOAK])
def test_soak(name, operations, replicas):
    entry = entry_by_name(name)
    names = tuple(f"r{i}" for i in range(1, replicas + 1))
    if entry.kind == "OB":
        system = random_op_execution(
            entry.make_crdt(), entry.make_workload(),
            replicas=names, operations=operations, seed=operations,
        )
    else:
        system = random_state_execution(
            entry.make_crdt(), entry.make_workload(),
            replicas=names, operations=operations, seed=operations,
        )
    history = system.history()

    checker = (
        execution_order_check if entry.lin_class == "EO"
        else timestamp_order_check
    )
    outcome = checker(
        history, entry.make_spec(), system.generation_order,
        entry.make_gamma(),
    )
    assert outcome.ok, outcome.reason

    ok, offenders = check_convergence(system.replica_views())
    assert ok, offenders

    sessions = check_session_guarantees(history, system.generation_order)
    assert sessions.all_hold

    stats = history_stats(history)
    assert stats.operations >= operations
    assert stats.concurrent_pairs > 0


def test_wooki_frontier_guard_raises_instead_of_oom():
    # Past ~15 inserts the nondeterministic Wooki spec frontier explodes;
    # the replay guard must turn that into a clear error.
    from repro.core.errors import SpecViolation

    entry = entry_by_name("Wooki")
    system = random_op_execution(
        entry.make_crdt(), entry.make_workload(),
        replicas=("r1", "r2", "r3", "r4"), operations=25, seed=25,
    )
    with pytest.raises(SpecViolation, match="frontier exceeded"):
        execution_order_check(
            system.history(), entry.make_spec(), system.generation_order
        )


def test_soak_checker_scales_past_brute_force():
    # 60 updates: the candidate check stays fast where the brute-force
    # search space would be astronomically large.
    entry = entry_by_name("OR-Set")
    system = random_op_execution(
        entry.make_crdt(), entry.make_workload(),
        replicas=("r1", "r2", "r3", "r4"), operations=60, seed=9,
    )
    outcome = execution_order_check(
        system.history(), entry.make_spec(), system.generation_order,
        entry.make_gamma(),
    )
    assert outcome.ok
