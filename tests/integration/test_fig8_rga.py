"""Fig. 8: execution-order vs timestamp-order linearizations for RGA."""

from repro.core.linearization import history_timestamp
from repro.core.ralin import (
    check_ra_linearizable,
    execution_order_check,
    timestamp_order_check,
)
from repro.scenarios import fig8_rga
from repro.specs import RGASpec


class TestFig8:
    def setup_method(self):
        self.scenario = fig8_rga()
        self.labels = self.scenario.labels

    def test_timestamps_ordered_as_in_figure(self):
        assert self.labels["ℓ1"].ts < self.labels["ℓ2"].ts < self.labels["ℓ3"].ts

    def test_read_returns_b_a(self):
        assert self.labels["ℓ4"].ret == ("b", "a")

    def test_generation_order_starts_with_l2(self):
        gen = self.scenario.system.generation_order
        assert gen.index(self.labels["ℓ2"]) < gen.index(self.labels["ℓ1"])

    def test_execution_order_fails(self):
        result = execution_order_check(
            self.scenario.history, RGASpec(),
            self.scenario.system.generation_order,
        )
        assert not result.ok

    def test_timestamp_order_succeeds(self):
        result = timestamp_order_check(
            self.scenario.history, RGASpec(),
            self.scenario.system.generation_order,
        )
        assert result.ok
        assert result.update_order == [
            self.labels["ℓ1"], self.labels["ℓ2"], self.labels["ℓ3"]
        ]

    def test_read_virtual_timestamp_is_tsb(self):
        virtual = history_timestamp(self.scenario.history, self.labels["ℓ4"])
        assert virtual == self.labels["ℓ2"].ts

    def test_read_linearized_before_l3(self):
        result = timestamp_order_check(
            self.scenario.history, RGASpec(),
            self.scenario.system.generation_order,
        )
        full = result.linearization
        assert full.index(self.labels["ℓ4"]) < full.index(self.labels["ℓ3"])

    def test_history_is_ra_linearizable(self):
        assert check_ra_linearizable(self.scenario.history, RGASpec()).ok
