"""Fig. 14 / Appendix C: the API matters — addAt specs."""

from repro.core.ralin import check_ra_linearizable, timestamp_order_check
from repro.scenarios import fig14_addat
from repro.specs import AddAt1Spec, AddAt2Spec, AddAt3Spec


class TestFig14:
    def setup_method(self):
        self.scenario = fig14_addat()

    def test_final_read_is_d_e_c(self):
        assert self.scenario.labels["read"].ret == ("d", "e", "c")

    def test_timestamp_order_matches_figure(self):
        labels = self.scenario.labels
        assert (
            labels["addAt(a,0)"].ts
            < labels["addAt(b,0)"].ts
            < labels["addAt(c,1)"].ts
            < labels["addAt(d,0)"].ts
            < labels["addAt(e,2)"].ts
        )

    def test_not_ra_linearizable_wrt_addat1(self):
        result = check_ra_linearizable(self.scenario.history, AddAt1Spec())
        assert not result.ok

    def test_not_ra_linearizable_wrt_addat2(self):
        result = check_ra_linearizable(self.scenario.history, AddAt2Spec())
        assert not result.ok

    def test_ra_linearizable_wrt_addat3(self):
        result = check_ra_linearizable(self.scenario.history, AddAt3Spec())
        assert result.ok

    def test_lemma_c1_candidate_count(self):
        # The visibility partial order admits exactly the ten linear
        # extensions Lemma C.1 enumerates (all rejected).
        result = check_ra_linearizable(
            self.scenario.history, AddAt1Spec(), prune_with_spec=False
        )
        assert not result.ok
        assert result.explored == 10

    def test_lemma_c2_timestamp_order(self):
        result = timestamp_order_check(
            self.scenario.history, AddAt3Spec(),
            self.scenario.system.generation_order,
        )
        assert result.ok

    def test_returns_expose_local_views(self):
        labels = self.scenario.labels
        assert labels["addAt(c,1)"].ret == ("a", "c")
        assert labels["addAt(d,0)"].ret == ("d", "b", "a")
        assert labels["addAt(e,2)"].ret == ("d", "b", "e")
        assert labels["remove(a)"].ret == ("d", "b")
        assert labels["remove(b)"].ret == ("a",)
