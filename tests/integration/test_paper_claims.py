"""One executable assertion per named claim of the paper.

A consolidated index: each test is named after the theorem/lemma/figure it
checks and contains (or references) its executable counterpart.  Detailed
diagnostics live in the per-figure test modules; this file is the
at-a-glance contract with the paper.
"""

from repro.core.causal import check_causal_convergence
from repro.core.ralin import (
    check_ra_linearizable,
    execution_order_check,
    timestamp_order_check,
)
from repro.core.spec import ComposedSpec
from repro.core.strong import check_strong_linearizable
from repro.proofs import FIGURE_12_ENTRIES, verify_entry
from repro.runtime.composition import check_composed_ra_linearizable
from repro.scenarios import (
    fig5a_orset,
    fig8_rga,
    fig9_two_orsets,
    fig10_two_rgas,
    fig14_addat,
)
from repro.specs import (
    AddAt1Spec,
    AddAt2Spec,
    AddAt3Spec,
    ORSetRewriting,
    ORSetSpec,
    RGASpec,
    SetSpec,
    plain_set_view,
)


def test_fig5a_orset_is_not_linearizable():
    """Sec. 2.2: OR-Set defeats standard linearizability over Spec(Set)."""
    scenario = fig5a_orset()
    assert check_strong_linearizable(
        scenario.history, SetSpec(), gamma=plain_set_view()
    ) is None


def test_definition_37_orset_is_ra_linearizable():
    """Def. 3.7 + Example 3.6: OR-Set RA-linearizable after γ."""
    scenario = fig5a_orset()
    assert check_ra_linearizable(
        scenario.history, ORSetSpec(), gamma=ORSetRewriting()
    ).ok


def test_theorem_44_execution_order_objects():
    """Thm 4.4: Commutativity + Refinement ⇒ execution-order linearizations.

    Checked as: every EO entry of Fig. 12 passes Commutativity, Refinement,
    and the execution-order candidate on randomized executions.
    """
    for entry in FIGURE_12_ENTRIES:
        if entry.lin_class != "EO":
            continue
        result = verify_entry(entry, executions=2, operations=8)
        assert result.verified, (entry.name, result.failures)


def test_theorem_46_timestamp_order_objects():
    """Thm 4.6: Commutativity + Refinement_ts ⇒ timestamp-order
    linearizations — all TO entries of Fig. 12 verify."""
    for entry in FIGURE_12_ENTRIES:
        if entry.lin_class != "TO":
            continue
        result = verify_entry(entry, executions=2, operations=8)
        assert result.verified, (entry.name, result.failures)


def test_fig8_separates_eo_from_to():
    """Sec. 4.2: the Fig. 8 history rejects EO and accepts TO."""
    scenario = fig8_rga()
    order = scenario.system.generation_order
    assert not execution_order_check(scenario.history, RGASpec(), order).ok
    assert timestamp_order_check(scenario.history, RGASpec(), order).ok


def test_section_51_composition_not_compositional_per_choice():
    """Sec. 5.1 (Fig. 9): specific per-object linearizations may not merge
    — see tests/runtime/test_composition.py for the detailed combine check;
    here: the composed history itself is still RA-linearizable."""
    scenario = fig9_two_orsets()
    assert check_composed_ra_linearizable(
        scenario.history,
        {"o1": ORSetSpec(), "o2": ORSetSpec()},
        {"o1": ORSetRewriting(), "o2": ORSetRewriting()},
    ).ok


def test_theorem_53_eo_composition():
    """Thm 5.3 is exercised exhaustively in
    tests/integration/test_exhaustive_composition.py; spot-check here."""
    scenario = fig9_two_orsets()
    assert check_composed_ra_linearizable(
        scenario.history,
        {"o1": ORSetSpec(), "o2": ORSetSpec()},
        {"o1": ORSetRewriting(), "o2": ORSetRewriting()},
    ).ok


def test_theorem_55_shared_timestamp_composition():
    """Thm 5.5: ⊗ fails for TO objects, ⊗ts succeeds (Fig. 10/11)."""
    specs = {"o1": RGASpec(), "o2": RGASpec()}
    broken = fig10_two_rgas(shared_timestamps=False)
    fixed = fig10_two_rgas(shared_timestamps=True)
    assert not check_composed_ra_linearizable(broken.history, specs).ok
    assert check_composed_ra_linearizable(fixed.history, specs).ok


def test_figure_12_all_rows_verify():
    """Fig. 12: all nine CRDTs RA-linearizable under the stated classes."""
    for entry in FIGURE_12_ENTRIES:
        result = verify_entry(entry, executions=2, operations=8)
        assert result.verified, (entry.name, result.failures)


def test_lemma_c1_addat_not_ra_linearizable():
    """Lemma C.1: the Fig. 14 history fails Spec(addAt1) and Spec(addAt2),
    with exactly ten candidate linearizations."""
    scenario = fig14_addat()
    result1 = check_ra_linearizable(
        scenario.history, AddAt1Spec(), prune_with_spec=False
    )
    assert not result1.ok and result1.explored == 10
    assert not check_ra_linearizable(scenario.history, AddAt2Spec()).ok


def test_lemma_c2_addat3_ra_linearizable():
    """Lemma C.2: RGA-addAt is RA-linearizable w.r.t. Spec(addAt3)."""
    scenario = fig14_addat()
    assert check_ra_linearizable(scenario.history, AddAt3Spec()).ok


def test_section_7_causal_convergence_strictly_weaker():
    """Sec. 7: RA-lin ⊆ causal convergence, strictly (Fig. 10 separates)."""
    scenario = fig10_two_rgas(shared_timestamps=False)
    spec = ComposedSpec({"o1": RGASpec(), "o2": RGASpec()})
    assert check_causal_convergence(scenario.history, spec).ok
    assert not check_ra_linearizable(scenario.history, spec).ok
