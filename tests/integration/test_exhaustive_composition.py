"""Exhaustive coverage of tiny *composed* programs (Theorems 5.3/5.5).

Every interleaving of a two-object program is checked against the composed
specification — under ⊗ts all pass; under ⊗ with timestamp-ordered objects
the explorer *discovers* interleavings exhibiting the Fig. 10 failure mode.
"""

from repro.core.sentinels import ROOT
from repro.crdts import OpCounter, OpORSet, OpRGA
from repro.runtime import OpBasedSystem, explore_op_programs
from repro.runtime.composition import check_composed_ra_linearizable
from repro.specs import CounterSpec, ORSetRewriting, ORSetSpec, RGASpec


def run_exploration(objects, programs, shared, gammas=None, specs=None,
                    max_configurations=400):
    verdicts = []

    def visit(system, returns):
        result = check_composed_ra_linearizable(
            system.history(), specs, gammas, max_orders=200
        )
        verdicts.append(result.ok)

    visited = explore_op_programs(
        lambda: OpBasedSystem(
            {k: v() for k, v in objects.items()},
            replicas=sorted(programs),
            shared_timestamps=shared,
        ),
        programs,
        visit,
        max_configurations=max_configurations,
    )
    return visited, verdicts


class TestEOCompositionCoverage:
    def test_orset_counter_composition_all_pass(self):
        programs = {
            "r1": [("add", ("x",), "s"), ("inc", (), "c")],
            "r2": [("inc", (), "c"), ("read", (), "s")],
        }
        visited, verdicts = run_exploration(
            {"s": OpORSet, "c": OpCounter},
            programs,
            shared=True,
            gammas={"s": ORSetRewriting(), "c": None},
            specs={"s": ORSetSpec(), "c": CounterSpec()},
        )
        assert visited == len(verdicts) > 10
        assert all(verdicts)

    def test_eo_composition_survives_independent_clocks(self):
        # Theorem 5.3 needs no shared generator for EO objects.
        programs = {
            "r1": [("add", ("x",), "s1"), ("add", ("y",), "s2")],
            "r2": [("add", ("y",), "s2"), ("add", ("x",), "s1")],
        }
        visited, verdicts = run_exploration(
            {"s1": OpORSet, "s2": OpORSet},
            programs,
            shared=False,
            gammas={"s1": ORSetRewriting(), "s2": ORSetRewriting()},
            specs={"s1": ORSetSpec(), "s2": ORSetSpec()},
        )
        assert all(verdicts) and visited > 10


class TestTOCompositionCoverage:
    PROGRAMS = {
        "r1": [("addAfter", (ROOT, "c"), "o2"),
               ("addAfter", (ROOT, "a"), "o1"),
               ("read", (), "o1"), ("read", (), "o2")],
        "r2": [("addAfter", (ROOT, "b"), "o1"),
               ("addAfter", (ROOT, "d"), "o2"),
               ("read", (), "o1"), ("read", (), "o2")],
    }

    def _run(self, shared, max_configurations):
        return run_exploration(
            {"o1": OpRGA, "o2": OpRGA},
            self.PROGRAMS,
            shared=shared,
            specs={"o1": RGASpec(), "o2": RGASpec()},
            max_configurations=max_configurations,
        )

    def test_shared_clock_composition_always_passes(self):
        visited, verdicts = self._run(shared=True, max_configurations=300)
        assert visited > 100
        assert all(verdicts), (
            f"{verdicts.count(False)} of {len(verdicts)} interleavings "
            "failed under ⊗ts"
        )

    def test_two_replicas_cannot_break_to_composition(self):
        # Interesting scope result: with two replicas and one insert per
        # object per replica, the ⊗ constraint graph (spec orders a<b and
        # c<d from the reads, program orders c≺a and b≺d) is acyclic no
        # matter the interleaving — the Fig. 10 cycle needs a *third*
        # replica and a cross-delivery edge (e ≺ a).  So even with
        # independent clocks every interleaving in this scope passes.
        _visited, verdicts = self._run(shared=False, max_configurations=300)
        assert all(verdicts)

    def test_three_replica_fig10_pattern_fails(self):
        # The genuine ⊗ failure, reached by the recorded Fig. 10 schedule.
        from repro.scenarios import fig10_two_rgas

        scenario = fig10_two_rgas(shared_timestamps=False)
        result = check_composed_ra_linearizable(
            scenario.history, {"o1": RGASpec(), "o2": RGASpec()}
        )
        assert not result.ok
