"""Random partitioned executions stay RA-linearizable and converge.

Availability under partition is the paper's opening motivation (Sec. 1):
replicas keep accepting operations while disconnected, and RA-linearizability
still explains the healed execution.
"""

import random

import pytest

from repro.core.errors import PreconditionViolation
from repro.proofs.registry import entry_by_name
from repro.runtime import Cluster

NAMES = ["Counter", "OR-Set", "RGA", "LWW-Register", "Wooki"]


def random_partitioned_run(entry, seed, steps=14):
    rng = random.Random(seed)
    cluster = Cluster(entry.make_crdt(), replicas=("r1", "r2", "r3"))
    workload = entry.make_workload()
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.12:
            cluster.partition(["r1"], ["r2", "r3"])
        elif roll < 0.2:
            cluster.heal()
        else:
            replica = rng.choice(cluster.replicas)
            proposal = workload.propose(cluster[replica].state(), rng)
            if proposal is None:
                continue
            method, args = proposal
            try:
                getattr(cluster[replica], method)(*args)
            except PreconditionViolation:
                continue
    cluster.heal()
    for replica in cluster.replicas:
        getattr(cluster[replica], "read")()
    return cluster


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("seed", [5, 17])
def test_partitioned_execution_checks(name, seed):
    entry = entry_by_name(name)
    cluster = random_partitioned_run(entry, seed)
    assert cluster.converged()
    result = cluster.check(entry.make_spec(), entry.make_gamma())
    assert result.ok, result.reason


def test_operations_accepted_during_partition():
    entry = entry_by_name("Counter")
    cluster = Cluster(entry.make_crdt(), replicas=("r1", "r2"))
    cluster.partition(["r1"], ["r2"])
    # Both sides keep making progress — availability under partition.
    cluster["r1"].inc()
    cluster["r2"].inc()
    assert cluster["r1"].read() == 1
    assert cluster["r2"].read() == 1
    cluster.heal()
    assert cluster["r1"].read() == 2
