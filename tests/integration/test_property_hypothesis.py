"""Property-based tests (hypothesis) on core data structures and invariants."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.freeze import freeze
from repro.core.history import History
from repro.core.label import Label
from repro.core.linearization import iter_topological_orders
from repro.core.sentinels import BEGIN, END, ROOT
from repro.core.timestamp import Timestamp, VersionVector
from repro.crdts import OpORSet, OpRGA, SBLWWElementSet, SBPNCounter
from repro.crdts.base import Effector
from repro.crdts.opbased.rga import traverse
from repro.crdts.opbased.wooki import WChar, integrate_ins
from repro.specs import CounterSpec, SetSpec

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

replicas = st.sampled_from(["r1", "r2", "r3"])
timestamps = st.builds(Timestamp, st.integers(1, 9), replicas)
version_vectors = st.dictionaries(replicas, st.integers(1, 5), max_size=3).map(
    VersionVector.of
)
elements = st.sampled_from(["a", "b", "c", "d"])

orset_states = st.frozensets(
    st.tuples(elements, timestamps), max_size=5
)

lww_records = st.frozensets(st.tuples(elements, timestamps), max_size=4)
lww_states = st.tuples(lww_records, lww_records)

pn_vectors = st.dictionaries(replicas, st.integers(1, 5), max_size=3).map(
    lambda d: freeze(d)
)
pn_states = st.tuples(pn_vectors, pn_vectors)


# ---------------------------------------------------------------------------
# Version vectors form a join semilattice
# ---------------------------------------------------------------------------


class TestVersionVectorLattice:
    @given(version_vectors, version_vectors)
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(version_vectors, version_vectors, version_vectors)
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(version_vectors)
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(version_vectors, version_vectors)
    def test_join_is_least_upper_bound(self, a, b):
        j = a.join(b)
        assert a.leq(j) and b.leq(j)

    @given(version_vectors, version_vectors)
    def test_order_antisymmetric(self, a, b):
        if a.leq(b) and b.leq(a):
            assert a == b


# ---------------------------------------------------------------------------
# OR-Set effectors commute when concurrent (remove unaware of the add)
# ---------------------------------------------------------------------------


class TestORSetEffectorAlgebra:
    @given(orset_states, st.tuples(elements, timestamps),
           st.frozensets(st.tuples(elements, timestamps), max_size=3))
    def test_concurrent_add_remove_commute(self, state, pair, observed):
        crdt = OpORSet()
        add = Effector("add", pair)
        remove = Effector("remove", (observed - {pair},))
        ab = crdt.apply_effector(crdt.apply_effector(state, add), remove)
        ba = crdt.apply_effector(crdt.apply_effector(state, remove), add)
        assert ab == ba

    @given(orset_states, st.tuples(elements, timestamps),
           st.tuples(elements, timestamps))
    def test_adds_commute(self, state, p1, p2):
        crdt = OpORSet()
        a1, a2 = Effector("add", p1), Effector("add", p2)
        assert crdt.apply_effector(crdt.apply_effector(state, a1), a2) == \
            crdt.apply_effector(crdt.apply_effector(state, a2), a1)

    @given(orset_states,
           st.frozensets(st.tuples(elements, timestamps), max_size=3),
           st.frozensets(st.tuples(elements, timestamps), max_size=3))
    def test_removes_commute(self, state, r1, r2):
        crdt = OpORSet()
        e1, e2 = Effector("remove", (r1,)), Effector("remove", (r2,))
        assert crdt.apply_effector(crdt.apply_effector(state, e1), e2) == \
            crdt.apply_effector(crdt.apply_effector(state, e2), e1)


# ---------------------------------------------------------------------------
# State-based merges are least upper bounds
# ---------------------------------------------------------------------------


class TestStateBasedLattices:
    @given(lww_states, lww_states)
    def test_lww_merge_commutative(self, s1, s2):
        crdt = SBLWWElementSet()
        assert crdt.merge(s1, s2) == crdt.merge(s2, s1)

    @given(lww_states, lww_states, lww_states)
    def test_lww_merge_associative(self, s1, s2, s3):
        crdt = SBLWWElementSet()
        assert crdt.merge(crdt.merge(s1, s2), s3) == crdt.merge(
            s1, crdt.merge(s2, s3)
        )

    @given(lww_states)
    def test_lww_merge_idempotent(self, s):
        assert SBLWWElementSet().merge(s, s) == s

    @given(lww_states, lww_states)
    def test_lww_compare_merge(self, s1, s2):
        crdt = SBLWWElementSet()
        merged = crdt.merge(s1, s2)
        assert crdt.compare(s1, merged) and crdt.compare(s2, merged)

    @given(pn_states, pn_states)
    def test_pn_merge_commutative(self, s1, s2):
        crdt = SBPNCounter()
        assert crdt.merge(s1, s2) == crdt.merge(s2, s1)

    @given(pn_states, pn_states, pn_states)
    def test_pn_merge_associative(self, s1, s2, s3):
        crdt = SBPNCounter()
        assert crdt.merge(crdt.merge(s1, s2), s3) == crdt.merge(
            s1, crdt.merge(s2, s3)
        )

    @given(pn_states)
    def test_pn_merge_idempotent(self, s):
        assert SBPNCounter().merge(s, s) == s


# ---------------------------------------------------------------------------
# RGA traversal invariants
# ---------------------------------------------------------------------------


@st.composite
def rga_trees(draw):
    """Random well-formed Ti-trees built by valid insertion sequences."""
    crdt = OpRGA()
    state = crdt.initial_state()
    count = draw(st.integers(0, 6))
    counter = itertools.count(1)
    for i in range(count):
        nodes, tombs = state
        anchors = [ROOT] + sorted(e for _, _, e in nodes)
        anchor = draw(st.sampled_from(anchors))
        ts = Timestamp(next(counter), draw(replicas))
        state = crdt.apply_effector(
            state, Effector("addAfter", (anchor, ts, f"v{i}"))
        )
    nodes, _ = state
    elems = sorted(e for _, _, e in nodes)
    tomb_subset = draw(st.sets(st.sampled_from(elems), max_size=3)) if elems else set()
    return (nodes, frozenset(tomb_subset))


class TestRGATraversal:
    @given(rga_trees())
    def test_traverse_covers_live_elements(self, state):
        nodes, tombs = state
        result = traverse(nodes, tombs)
        live = {e for _, _, e in nodes} - set(tombs)
        assert set(result) == live
        assert len(result) == len(set(result))

    @given(rga_trees())
    def test_tombstones_never_reported(self, state):
        nodes, tombs = state
        assert not set(traverse(nodes, tombs)) & set(tombs)

    @given(rga_trees())
    def test_traverse_deterministic(self, state):
        assert traverse(*state) == traverse(*state)


# ---------------------------------------------------------------------------
# Wooki integration converges under permutation of concurrent inserts
# ---------------------------------------------------------------------------


class TestWookiConvergence:
    @settings(max_examples=30)
    @given(st.lists(
        st.tuples(st.integers(1, 5), replicas), min_size=1, max_size=4,
        unique=True,
    ))
    def test_top_level_inserts_converge(self, ids):
        chars = [
            WChar(Timestamp(c, r), f"v{c}{r}", 1, True) for c, r in ids
        ]
        initial = (
            WChar(BEGIN, BEGIN, 0, True),
            WChar(END, END, 0, True),
        )
        results = set()
        for perm in itertools.permutations(chars):
            state = initial
            for char in perm:
                state = integrate_ins(state, char, BEGIN, END)
            results.add(state)
        assert len(results) == 1


# ---------------------------------------------------------------------------
# Specification replay and linear extensions
# ---------------------------------------------------------------------------


nested_values = st.recursive(
    st.none() | st.booleans() | st.integers(-5, 5) | st.text(max_size=3),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=2), children, max_size=3),
    max_leaves=8,
)


class TestFreezeProperties:
    @given(nested_values)
    def test_freeze_idempotent(self, value):
        once = freeze(value)
        assert freeze(once) == once

    @given(nested_values)
    def test_freeze_hashable(self, value):
        hash(freeze(value))

    @given(nested_values)
    def test_freeze_equal_inputs_equal_outputs(self, value):
        assert freeze(value) == freeze(value)


class TestEncodingProperties:
    @given(nested_values.map(freeze))
    def test_encode_decode_round_trip(self, value):
        from repro.core.encoding import decode, encode

        assert decode(encode(value)) == value

    @given(st.builds(Timestamp, st.integers(0, 99), replicas))
    def test_timestamp_round_trip(self, ts):
        from repro.core.encoding import decode, encode

        assert decode(encode(ts)) == ts


class TestSpecProperties:
    @given(st.lists(st.sampled_from(["inc", "dec"]), max_size=8))
    def test_counter_replay_matches_arithmetic(self, methods):
        spec = CounterSpec()
        seq = [Label(m) for m in methods]
        expected = methods.count("inc") - methods.count("dec")
        assert spec.replay(seq) == frozenset({expected})

    @given(st.lists(st.tuples(st.sampled_from(["add", "remove"]), elements),
                    max_size=8))
    def test_set_replay_matches_fold(self, ops):
        spec = SetSpec()
        seq = [Label(m, (e,)) for m, e in ops]
        expected = set()
        for m, e in ops:
            (expected.add if m == "add" else expected.discard)(e)
        assert spec.replay(seq) == frozenset({frozenset(expected)})

    @given(st.integers(1, 5))
    def test_topological_order_count_of_antichain(self, n):
        import math

        nodes = [Label("m") for _ in range(n)]
        orders = list(iter_topological_orders(nodes, {}))
        assert len(orders) == math.factorial(n)
        for order in orders:
            assert sorted(order, key=lambda l: l.uid) == sorted(
                nodes, key=lambda l: l.uid
            )

    @given(st.integers(2, 5))
    def test_chain_has_single_extension(self, n):
        nodes = [Label("m") for _ in range(n)]
        preds = {nodes[i]: {nodes[i - 1]} for i in range(1, n)}
        orders = list(iter_topological_orders(nodes, preds))
        assert orders == [nodes]
