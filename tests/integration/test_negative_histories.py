"""Negative testing of the checkers: wrong observations must be rejected.

For every data type, take a real execution, tamper with one read's return
value, and confirm the RA-linearizability checker rejects the doctored
history — the checker is not vacuously accepting.
"""

import pytest

from repro.core.history import History
from repro.core.ralin import check_ra_linearizable
from repro.proofs.registry import ALL_ENTRIES
from repro.runtime import random_op_execution, random_state_execution


def doctored(history: History, victim, fake_ret) -> History:
    replacement = victim.with_ret(fake_ret)
    mapping = {victim: replacement}
    labels = [mapping.get(l, l) for l in history.labels]
    edges = [
        (mapping.get(a, a), mapping.get(b, b)) for a, b in history.closure()
    ]
    return History(labels, edges)


FAKES = {
    "Counter": 999,
    "PN-Counter": 999,
    "G-Counter": 999,
    "LWW-Register": "؞no-such-value",
    "LWW-Register (SB)": "؞no-such-value",
    "Multi-Value Reg.": frozenset({"؞no-such-value"}),
    "LWW-Element Set": frozenset({"؞ghost"}),
    "2P-Set": frozenset({"؞ghost"}),
    "2P-Set (op)": frozenset({"؞ghost"}),
    "G-Set": frozenset({"؞ghost"}),
    "OR-Set": frozenset({"؞ghost"}),
    "RGA": ("؞ghost",),
    "RGA-addAt": ("؞ghost",),
    "Wooki": ("؞ghost",),
}


@pytest.mark.parametrize("entry", ALL_ENTRIES, ids=[e.name for e in ALL_ENTRIES])
def test_tampered_read_rejected(entry):
    if entry.kind == "OB":
        system = random_op_execution(
            entry.make_crdt(), entry.make_workload(), operations=6, seed=31
        )
    else:
        system = random_state_execution(
            entry.make_crdt(), entry.make_workload(), operations=6, seed=31
        )
    history = system.history()
    reads = [l for l in system.generation_order if l.method == "read"]
    assert reads, "workload produced no reads"
    bad = doctored(history, reads[-1], FAKES[entry.name])
    result = check_ra_linearizable(
        bad, entry.make_spec(), entry.make_gamma()
    )
    assert not result.ok, f"{entry.name}: doctored read accepted"


@pytest.mark.parametrize(
    "entry",
    [e for e in ALL_ENTRIES if e.name in ("Counter", "OR-Set", "RGA")],
    ids=lambda e: e.name,
)
def test_untampered_baseline_accepted(entry):
    system = random_op_execution(
        entry.make_crdt(), entry.make_workload(), operations=6, seed=31
    )
    result = check_ra_linearizable(
        system.history(), entry.make_spec(), entry.make_gamma()
    )
    assert result.ok
