"""Randomized cross-validation: every random execution of every catalogue
CRDT is RA-linearizable — checked both by the candidate-order construction
(Theorems 4.4/4.6) and by the brute-force Def. 3.5 search."""

import pytest

from repro.core.ralin import (
    check_ra_linearizable,
    execution_order_check,
    timestamp_order_check,
)
from repro.core.convergence import check_convergence
from repro.proofs.registry import ALL_ENTRIES
from repro.runtime import random_op_execution, random_state_execution

SEEDS = [11, 22, 33]


def run(entry, seed, operations=8):
    if entry.kind == "OB":
        return random_op_execution(
            entry.make_crdt(), entry.make_workload(),
            operations=operations, seed=seed,
        )
    return random_state_execution(
        entry.make_crdt(), entry.make_workload(),
        operations=operations, seed=seed,
    )


@pytest.mark.parametrize("entry", ALL_ENTRIES, ids=[e.name for e in ALL_ENTRIES])
@pytest.mark.parametrize("seed", SEEDS)
def test_candidate_linearization_valid(entry, seed):
    system = run(entry, seed)
    checker = (
        execution_order_check if entry.lin_class == "EO"
        else timestamp_order_check
    )
    result = checker(
        system.history(), entry.make_spec(), system.generation_order,
        entry.make_gamma(),
    )
    assert result.ok, result.reason


@pytest.mark.parametrize("entry", ALL_ENTRIES, ids=[e.name for e in ALL_ENTRIES])
def test_brute_force_agrees(entry):
    system = run(entry, seed=99, operations=6)
    result = check_ra_linearizable(
        system.history(), entry.make_spec(), entry.make_gamma(),
    )
    assert result.ok, result.reason


@pytest.mark.parametrize("entry", ALL_ENTRIES, ids=[e.name for e in ALL_ENTRIES])
@pytest.mark.parametrize("seed", SEEDS)
def test_convergence(entry, seed):
    system = run(entry, seed)
    ok, offenders = check_convergence(system.replica_views())
    assert ok, offenders
