"""Hypothesis stateful testing of the op-based runtime.

A rule-based state machine drives an OR-Set system with arbitrary
interleavings of invocations and causal deliveries; class invariants assert
the runtime's structural guarantees after *every* step:

* visibility stays acyclic (History construction validates it);
* causal delivery: everything a replica has seen that is visible to a seen
  label is itself seen (downward closure);
* timestamps are consistent with visibility;
* read-your-writes holds;
* any two replicas with equal label sets have equal states.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.convergence import check_convergence
from repro.core.sessions import check_session_guarantees
from repro.crdts import OpORSet
from repro.runtime import OpBasedSystem

REPLICAS = ("r1", "r2")
VALUES = ("a", "b")


class ORSetMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.system = OpBasedSystem(OpORSet(), replicas=REPLICAS)

    @rule(replica=st.sampled_from(REPLICAS), value=st.sampled_from(VALUES))
    def add(self, replica, value):
        self.system.invoke(replica, "add", (value,))

    @rule(replica=st.sampled_from(REPLICAS), value=st.sampled_from(VALUES))
    def remove(self, replica, value):
        self.system.invoke(replica, "remove", (value,))

    @rule(replica=st.sampled_from(REPLICAS))
    def read(self, replica):
        label = self.system.invoke(replica, "read")
        # read must reflect exactly the replica's current state.
        expected = frozenset(e for e, _ in self.system.state(replica))
        assert label.ret == expected

    @rule(replica=st.sampled_from(REPLICAS), pick=st.integers(0, 10 ** 6))
    def deliver(self, replica, pick):
        pending = self.system.deliverable(replica)
        if pending:
            self.system.deliver(replica, pending[pick % len(pending)])

    @invariant()
    def visibility_is_acyclic(self):
        if not hasattr(self, "system"):
            return
        self.system.history()  # History.__init__ validates acyclicity

    @invariant()
    def seen_sets_are_causally_closed(self):
        if not hasattr(self, "system"):
            return
        history = self.system.history()
        for replica in REPLICAS:
            seen = self.system.seen(replica)
            for label in seen:
                missing = history.visible_to(label) - seen
                assert not missing, (
                    f"{replica} saw {label!r} but not {missing!r}"
                )

    @invariant()
    def timestamps_follow_visibility(self):
        if not hasattr(self, "system"):
            return
        history = self.system.history()
        for src, dst in history.closure():
            if src.generates_timestamp() and dst.generates_timestamp():
                assert src.ts < dst.ts

    @invariant()
    def session_guarantees_hold(self):
        if not hasattr(self, "system"):
            return
        report = check_session_guarantees(
            self.system.history(), self.system.generation_order
        )
        assert report.all_hold, report.violations

    @invariant()
    def equal_views_equal_states(self):
        if not hasattr(self, "system"):
            return
        ok, offenders = check_convergence(self.system.replica_views())
        assert ok, offenders


ORSetMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)
TestORSetMachine = ORSetMachine.TestCase
