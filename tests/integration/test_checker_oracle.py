"""Cross-validation of the RA-linearizability checker against a naive oracle.

The production checker searches over linear extensions of the visibility
closure *restricted to updates* (with pruning).  The oracle below is
deliberately dumb and independent: enumerate **every permutation of all
labels**, keep those consistent with visibility, and check Def. 3.5's three
conditions literally.  On random small histories both must agree — any
divergence is a checker bug.
"""

import itertools
import random

import pytest

from repro.core.history import History
from repro.core.label import Label
from repro.core.ralin import check_ra_linearizable
from repro.specs import CounterSpec, SetSpec


def oracle_ra_linearizable(history, spec) -> bool:
    """Literal Def. 3.5 over all label permutations."""
    labels = sorted(history.labels, key=lambda l: l.uid)
    updates = [l for l in labels if spec.is_update(l)]
    queries = [l for l in labels if spec.is_query(l)]
    vis = history.effective()

    for seq in itertools.permutations(labels):
        position = {label: i for i, label in enumerate(seq)}
        if any(position[a] > position[b] for a, b in vis):
            continue  # (i) violated
        update_seq = [l for l in seq if l in set(updates)]
        if not spec.admits(update_seq):
            continue  # (ii) violated
        ok = True
        for query in queries:
            visible = history.visible_to(query)
            sub = [u for u in update_seq if u in visible]
            frontier = spec.replay(sub)
            if not frontier or not spec.step_frontier(frontier, query):
                ok = False  # (iii) violated
                break
        if ok:
            return True
    return False


def random_counter_history(rng: random.Random):
    n_updates = rng.randint(1, 4)
    updates = [
        Label(rng.choice(["inc", "dec"])) for _ in range(n_updates)
    ]
    n_queries = rng.randint(0, 2)
    queries = [
        Label("read", ret=rng.randint(-2, 3)) for _ in range(n_queries)
    ]
    labels = updates + queries
    edges = []
    for i, src in enumerate(labels):
        for dst in labels[i + 1:]:
            if rng.random() < 0.4:
                edges.append((src, dst))
    return History(labels, edges)


def random_set_history(rng: random.Random):
    values = ["a", "b"]
    n_updates = rng.randint(1, 4)
    updates = [
        Label(rng.choice(["add", "remove"]), (rng.choice(values),))
        for _ in range(n_updates)
    ]
    n_queries = rng.randint(0, 2)
    queries = [
        Label("read", ret=frozenset(rng.sample(values, rng.randint(0, 2))))
        for _ in range(n_queries)
    ]
    labels = updates + queries
    edges = []
    for i, src in enumerate(labels):
        for dst in labels[i + 1:]:
            if rng.random() < 0.4:
                edges.append((src, dst))
    return History(labels, edges)


@pytest.mark.parametrize("seed", range(40))
def test_counter_checker_matches_oracle(seed):
    rng = random.Random(seed)
    history = random_counter_history(rng)
    spec = CounterSpec()
    assert check_ra_linearizable(history, spec).ok == oracle_ra_linearizable(
        history, spec
    )


@pytest.mark.parametrize("seed", range(40))
def test_set_checker_matches_oracle(seed):
    rng = random.Random(1000 + seed)
    history = random_set_history(rng)
    spec = SetSpec()
    assert check_ra_linearizable(history, spec).ok == oracle_ra_linearizable(
        history, spec
    )


@pytest.mark.parametrize("seed", range(15))
def test_pruning_does_not_change_verdict(seed):
    rng = random.Random(7000 + seed)
    history = random_set_history(rng)
    spec = SetSpec()
    pruned = check_ra_linearizable(history, spec, prune_with_spec=True)
    naive = check_ra_linearizable(history, spec, prune_with_spec=False)
    assert pruned.ok == naive.ok
