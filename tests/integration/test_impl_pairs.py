"""Op-based and state-based implementations of the same type agree.

Several data types ship in both flavours (Counter/PN-Counter,
LWW-Register op/state, 2P-Set op/state).  Driven by the same program with
full synchronization between steps, the two implementations must return the
same values from every operation — they implement the same sequential type.
"""

import random

import pytest

from repro.core.errors import PreconditionViolation
from repro.proofs.registry import entry_by_name
from repro.runtime import OpBasedSystem, StateBasedSystem

PAIRS = [
    ("Counter", "PN-Counter"),
    ("LWW-Register", "LWW-Register (SB)"),
    ("2P-Set (op)", "2P-Set"),
]


def lockstep(op_entry, sb_entry, seed, steps=20):
    rng = random.Random(seed)
    replicas = ("r1", "r2")
    op_system = OpBasedSystem(op_entry.make_crdt(), replicas=replicas)
    sb_system = StateBasedSystem(sb_entry.make_crdt(), replicas=replicas)
    workload = op_entry.make_workload()
    mismatches = []
    for _ in range(steps):
        replica = rng.choice(replicas)
        proposal = workload.propose(op_system.state(replica), rng)
        if proposal is None:
            continue
        method, args = proposal
        try:
            op_label = op_system.invoke(replica, method, args)
        except PreconditionViolation:
            continue
        sb_label = sb_system.invoke(replica, method, args)
        if method == "read" and op_label.ret != sb_label.ret:
            mismatches.append((method, args, op_label.ret, sb_label.ret))
        op_system.deliver_all()
        sb_system.sync_all()
    return mismatches


@pytest.mark.parametrize("op_name,sb_name", PAIRS, ids=[p[0] for p in PAIRS])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_flavours_agree_under_synchrony(op_name, sb_name, seed):
    mismatches = lockstep(
        entry_by_name(op_name), entry_by_name(sb_name), seed
    )
    assert mismatches == []


def test_pairs_share_specs():
    for op_name, sb_name in PAIRS:
        op_entry = entry_by_name(op_name)
        sb_entry = entry_by_name(sb_name)
        assert type(op_entry.make_spec()) is type(sb_entry.make_spec())
