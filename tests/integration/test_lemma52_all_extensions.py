"""Lemma 5.2: for an EO object, *every* linearization of a history that is
consistent with visibility is a valid RA-linearization.

This is the load-bearing lemma behind compositionality (Theorem 5.3).  We
check it by enumerating *all* update linear extensions of small executions
of the EO entries and validating each one — not just the execution-order
candidate.

The contrast test shows the lemma genuinely fails for TO objects (RGA):
some visibility-consistent extensions are not RA-linearizations.
"""

import pytest

from repro.core.linearization import induced_predecessors, iter_topological_orders
from repro.core.ralin import check_update_order
from repro.core.rewriting import rewrite_history
from repro.proofs.registry import entry_by_name
from repro.runtime import random_op_execution
from repro.scenarios import fig8_rga

EO_NAMES = ["Counter", "OR-Set", "Wooki", "2P-Set (op)"]


def all_update_orders(history, spec):
    updates = [l for l in history.labels if spec.is_update(l)]
    preds = induced_predecessors(history, updates)
    return iter_topological_orders(
        sorted(updates, key=lambda l: l.uid), preds
    )


@pytest.mark.parametrize("name", EO_NAMES)
@pytest.mark.parametrize("seed", [1, 7])
def test_every_extension_is_a_witness(name, seed):
    entry = entry_by_name(name)
    system = random_op_execution(
        entry.make_crdt(), entry.make_workload(), operations=6, seed=seed,
        replicas=("r1", "r2"),
    )
    spec = entry.make_spec()
    gamma = entry.make_gamma()
    history = system.history()
    rewritten = rewrite_history(history, gamma) if gamma else history
    count = 0
    for order in all_update_orders(rewritten, spec):
        count += 1
        outcome = check_update_order(rewritten, spec, order)
        assert outcome.ok, (
            f"Lemma 5.2 violated for {name}: extension {order!r} "
            f"rejected: {outcome.reason}"
        )
    assert count >= 1


def test_lemma52_fails_for_timestamp_order_objects():
    # RGA (TO): the Fig. 8 history has a visibility-consistent extension
    # (the execution order) that is *not* an RA-linearization.
    scenario = fig8_rga()
    spec = entry_by_name("RGA").make_spec()
    history = scenario.history
    verdicts = [
        check_update_order(history, spec, order).ok
        for order in all_update_orders(history, spec)
    ]
    assert True in verdicts and False in verdicts
