"""Fig. 5: OR-Set separates RA-linearizability from strong linearizability."""

from repro.core.ralin import check_ra_linearizable, execution_order_check
from repro.core.strong import check_strong_linearizable
from repro.scenarios import fig5a_orset
from repro.specs import ORSetRewriting, ORSetSpec, SetSpec, plain_set_view


class TestFig5:
    def setup_method(self):
        self.scenario = fig5a_orset()

    def test_both_reads_return_both_elements(self):
        assert self.scenario.labels["read@r1"].ret == frozenset({"a", "b"})
        assert self.scenario.labels["read@r2"].ret == frozenset({"a", "b"})

    def test_not_strongly_linearizable_wrt_set(self):
        witness = check_strong_linearizable(
            self.scenario.history, SetSpec(), gamma=plain_set_view()
        )
        assert witness is None

    def test_ra_linearizable_after_rewriting(self):
        result = check_ra_linearizable(
            self.scenario.history, ORSetSpec(), gamma=ORSetRewriting()
        )
        assert result.ok

    def test_execution_order_linearization_works(self):
        result = execution_order_check(
            self.scenario.history,
            ORSetSpec(),
            self.scenario.system.generation_order,
            ORSetRewriting(),
        )
        assert result.ok

    def test_removes_observed_only_local_pairs(self):
        remove_a = self.scenario.labels["remove(a)"]
        add_a_r1 = self.scenario.labels["add(a)@r1"]
        assert remove_a.ret == frozenset({("a", add_a_r1.ret)})

    def test_rewritten_history_has_split_removes(self):
        from repro.core.rewriting import rewrite_history

        gamma = ORSetRewriting()
        rewritten = rewrite_history(self.scenario.history, gamma)
        methods = sorted(l.method for l in rewritten.labels)
        assert methods.count("readIds") == 2
        assert methods.count("remove") == 2
        assert methods.count("add") == 4
