"""The scenarios package: figure builders are complete and well-formed."""

import pytest

from repro.scenarios import (
    Scenario,
    fig2_rga_conflict,
    fig5a_orset,
    fig8_rga,
    fig9_two_orsets,
    fig10_two_rgas,
    fig14_addat,
    section33_programs,
)

BUILDERS = [
    ("fig2", fig2_rga_conflict),
    ("fig5a", fig5a_orset),
    ("fig8", fig8_rga),
    ("fig9", fig9_two_orsets),
    ("fig10", lambda: fig10_two_rgas(False)),
    ("fig10ts", lambda: fig10_two_rgas(True)),
    ("fig14", fig14_addat),
]


@pytest.mark.parametrize("name,builder", BUILDERS, ids=[b[0] for b in BUILDERS])
def test_scenario_well_formed(name, builder):
    scenario = builder()
    assert isinstance(scenario, Scenario)
    assert scenario.labels
    for key, label in scenario.labels.items():
        assert label in scenario.history.labels, key
    # history property is re-derived from the live system
    assert len(scenario.history) == len(scenario.system.generation_order)


@pytest.mark.parametrize("name,builder", BUILDERS, ids=[b[0] for b in BUILDERS])
def test_scenarios_are_deterministic(name, builder):
    one, two = builder(), builder()
    assert [l.method for l in one.system.generation_order] == [
        l.method for l in two.system.generation_order
    ]
    assert [l.ret for l in one.system.generation_order] == [
        l.ret for l in two.system.generation_order
    ]


def test_section33_programs_shape():
    programs, postcondition = section33_programs()
    assert set(programs) == {"r1", "r2"}
    assert len(programs["r1"]) == 3 and len(programs["r2"]) == 2
    assert postcondition({"r1": [None, None, frozenset()],
                          "r2": [None, frozenset()]})
    assert not postcondition({"r1": [None, None, frozenset({"a"})],
                              "r2": [None, frozenset()]})
