"""Per-condition timing and failure classification (the ``timed`` hook).

``check_update_order`` optionally accumulates wall seconds per Def. 3.5
condition and tags every failing :class:`RAResult` with the condition
that rejected the candidate; :class:`RACheckContext` exposes both through
``CheckStats`` when constructed ``timed=True``.
"""

from repro.core.history import History
from repro.core.label import Label
from repro.core.ralin import RACheckContext, check_update_order
from repro.specs import CounterSpec


def _counter_history(ret):
    inc = Label("inc")
    read = Label("read", ret=ret)
    history = History([inc, read], [(inc, read)])
    return history, [inc, read]


class TestConditionClassification:
    def test_success_has_no_condition(self):
        history, order = _counter_history(1)
        result = check_update_order(history, CounterSpec(), order[:1])
        assert result.ok and result.condition is None

    def test_cover_failure(self):
        history, _ = _counter_history(1)
        result = check_update_order(history, CounterSpec(), [])
        assert not result.ok and result.condition == "cover"

    def test_visibility_failure(self):
        a, b = Label("inc"), Label("inc")
        history = History([a, b], [(a, b)])
        result = check_update_order(history, CounterSpec(), [b, a])
        assert not result.ok and result.condition == "i"

    def test_query_justification_failure(self):
        history, order = _counter_history(7)  # one inc cannot read 7
        result = check_update_order(history, CounterSpec(), order[:1])
        assert not result.ok and result.condition == "iii"


class TestTimings:
    def test_timings_accumulate_all_conditions(self):
        history, order = _counter_history(1)
        timings = {}
        result = check_update_order(history, CounterSpec(), order[:1],
                                    timings=timings)
        assert result.ok
        assert set(timings) == {"i", "ii", "iii"}
        assert all(seconds >= 0.0 for seconds in timings.values())

    def test_none_means_no_timing(self):
        history, order = _counter_history(1)
        result = check_update_order(history, CounterSpec(), order[:1])
        assert result.ok  # and no timings dict was required

    def test_timings_stop_at_failing_condition(self):
        history, _ = _counter_history(1)
        timings = {}
        a, b = Label("inc"), Label("inc")
        bad = History([a, b], [(a, b)])
        result = check_update_order(bad, CounterSpec(), [b, a],
                                    timings=timings)
        assert result.condition == "i"
        assert "i" in timings and "iii" not in timings


class TestTimedContext:
    def test_cond_seconds_populated_when_timed(self):
        ctx = RACheckContext(CounterSpec(), lin_class="EO", timed=True)
        history, order = _counter_history(1)
        assert ctx.check(history, order).ok
        assert set(ctx.stats.cond_seconds) >= {"ii", "iii"}

    def test_untimed_context_stays_empty(self):
        ctx = RACheckContext(CounterSpec(), lin_class="EO")
        history, order = _counter_history(1)
        assert ctx.check(history, order).ok
        assert ctx.stats.cond_seconds == {}

    def test_failed_conditions_counted(self):
        ctx = RACheckContext(CounterSpec(), lin_class="EO")
        history, order = _counter_history(9)
        assert not ctx.check(history, order).ok
        assert ctx.stats.failed_conditions == {"iii": 1}

    def test_memoized_failures_keep_counting(self):
        ctx = RACheckContext(CounterSpec(), lin_class="EO")
        h1, o1 = _counter_history(9)
        h2, o2 = _counter_history(9)  # isomorphic: memo hit
        assert not ctx.check(h1, o1).ok
        assert not ctx.check(h2, o2).ok
        assert ctx.stats.verdict_hits == 1
        assert ctx.stats.failed_conditions == {"iii": 2}

    def test_frontier_counters_mirrored(self):
        ctx = RACheckContext(CounterSpec(), lin_class="EO")
        history, order = _counter_history(1)
        ctx.check(history, order)
        assert ctx.stats.frontier_nodes == len(ctx.frontiers)
        assert ctx.stats.frontier_unattached == ctx.frontiers.unattached

    def test_as_dict_includes_new_fields(self):
        ctx = RACheckContext(CounterSpec(), lin_class="EO", timed=True)
        history, order = _counter_history(1)
        ctx.check(history, order)
        dumped = ctx.stats.as_dict()
        for key in ("frontier_nodes", "frontier_unattached",
                    "cond_seconds", "failed_conditions"):
            assert key in dumped
