"""Causal convergence vs RA-linearizability (Sec. 7 comparison)."""

from repro.core.causal import check_causal_convergence
from repro.core.history import History
from repro.core.label import Label
from repro.core.ralin import check_ra_linearizable
from repro.core.sentinels import ROOT
from repro.core.spec import ComposedSpec
from repro.core.timestamp import Timestamp
from repro.scenarios import fig10_two_rgas
from repro.specs import CounterSpec, RGASpec


class TestCausalConvergence:
    def test_ra_linearizable_implies_cc(self):
        inc = Label("inc")
        read = Label("read", ret=1)
        h = History([inc, read], [(inc, read)])
        assert check_ra_linearizable(h, CounterSpec()).ok
        assert check_causal_convergence(h, CounterSpec()).ok

    def test_cc_ignores_visibility_between_updates(self):
        # read ⇒ b·a needs a linearized before b, but vis orders b ≺ a.
        # RA-linearizability fails; causal convergence allows the
        # vis-inverting order and succeeds.
        a = Label("addAfter", (ROOT, "a"), ts=Timestamp(1, "r1"))
        b = Label("addAfter", (ROOT, "b"), ts=Timestamp(2, "r1"))
        read = Label("read", ret=("b", "a"))
        h = History([a, b, read], [(b, a), (a, read), (b, read)])
        assert not check_ra_linearizable(h, RGASpec()).ok
        assert check_causal_convergence(h, RGASpec()).ok

    def test_fig10_separates_the_criteria(self):
        # The Fig. 10 ⊗ history: not RA-linearizable (shown in the paper),
        # but causally convergent — the CC update order may contradict
        # visibility (this is why CC is not compositional).
        scenario = fig10_two_rgas(shared_timestamps=False)
        spec = ComposedSpec({"o1": RGASpec(), "o2": RGASpec()})
        assert not check_ra_linearizable(scenario.history, spec).ok
        assert check_causal_convergence(scenario.history, spec).ok

    def test_cc_can_fail_too(self):
        inc = Label("inc")
        read = Label("read", ret=7)
        h = History([inc, read], [(inc, read)])
        assert not check_causal_convergence(h, CounterSpec()).ok

    def test_queries_still_bound_by_visibility(self):
        # CC relaxes the update order, not the queries' visible sets.
        inc1, inc2 = Label("inc"), Label("inc")
        read = Label("read", ret=2)
        h = History([inc1, inc2, read], [(inc1, read)])  # read saw only one
        assert not check_causal_convergence(h, CounterSpec()).ok
