"""Query-update rewritings γ and the Def. 3.7 history rewriting."""

from repro.core.history import History
from repro.core.label import Label
from repro.core.rewriting import (
    IdentityRewriting,
    RewritingMap,
    rewrite_history,
)
from repro.specs import ORSetRewriting


class TestIdentityRewriting:
    def test_maps_to_singleton(self):
        gamma = IdentityRewriting()
        label = Label("m")
        assert gamma.rewrite(label) == (label,)
        assert gamma.qry(label) is label
        assert gamma.upd(label) is label

    def test_history_unchanged(self):
        a, b = Label("m"), Label("m")
        h = History([a, b], [(a, b)])
        assert rewrite_history(h, IdentityRewriting()) == h


class TestRewritingMap:
    def test_caches_images(self):
        gamma = RewritingMap(lambda l: (Label(l.method + "_x"),))
        label = Label("m")
        assert gamma.rewrite(label)[0] is gamma.rewrite(label)[0]


class TestORSetRewriting:
    def test_add_becomes_update_with_id(self):
        gamma = ORSetRewriting()
        add = Label("add", ("a",), ret=42)
        (image,) = gamma.rewrite(add)
        assert image.method == "add" and image.args == ("a", 42)
        assert image.ret is None

    def test_remove_splits_into_query_update(self):
        gamma = ORSetRewriting()
        observed = frozenset({("a", 1)})
        remove = Label("remove", ("a",), ret=observed)
        query, update = gamma.rewrite(remove)
        assert query.method == "readIds" and query.ret == observed
        assert update.method == "remove" and update.args == (observed,)
        assert gamma.qry(remove) is query and gamma.upd(remove) is update

    def test_read_untouched(self):
        gamma = ORSetRewriting()
        read = Label("read", ret=frozenset({"a"}))
        assert gamma.rewrite(read) == (read,)


class TestHistoryRewriting:
    def test_pair_ordered_query_before_update(self):
        gamma = ORSetRewriting()
        remove = Label("remove", ("a",), ret=frozenset())
        h = History([remove])
        rewritten = rewrite_history(h, gamma)
        query, update = gamma.rewrite(remove)
        assert rewritten.sees(query, update)

    def test_query_part_sees_what_original_saw(self):
        gamma = ORSetRewriting()
        add = Label("add", ("a",), ret=1)
        remove = Label("remove", ("a",), ret=frozenset({("a", 1)}))
        h = History([add, remove], [(add, remove)])
        rewritten = rewrite_history(h, gamma)
        (add_image,) = gamma.rewrite(add)
        query, update = gamma.rewrite(remove)
        assert rewritten.sees(add_image, query)
        # Def. 3.7 orders the update part after the query part, so the add
        # precedes the update transitively (vis' itself has no direct edge).
        assert (add_image, update) in rewritten.closure()

    def test_successor_sees_update_part(self):
        gamma = ORSetRewriting()
        remove = Label("remove", ("a",), ret=frozenset())
        read = Label("read", ret=frozenset())
        h = History([remove, read], [(remove, read)])
        rewritten = rewrite_history(h, gamma)
        _query, update = gamma.rewrite(remove)
        assert rewritten.sees(update, read)

    def test_label_count(self):
        gamma = ORSetRewriting()
        add = Label("add", ("a",), ret=1)
        remove = Label("remove", ("a",), ret=frozenset())
        h = History([add, remove], [(add, remove)])
        rewritten = rewrite_history(h, gamma)
        assert len(rewritten) == 3  # add + (readIds, remove)
