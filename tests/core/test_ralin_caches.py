"""The incremental-checking caches: FrontierCache and RACheckContext.

Covers the PR-2 soundness obligations spelled out in
``docs/performance.md``: frontier reuse must be invisible (same answers
as uncached replay), verdict memoization must preserve *failing*
verdicts, and the EO condition-(i) skip must only fire for
forward-edge histories.
"""

import pytest

from repro.core.history import History
from repro.core.label import Label
from repro.core.ralin import (
    RACheckContext,
    _violates_visibility,
    check_update_order,
    execution_order_check,
)
from repro.core.spec import FrontierCache
from repro.core.timestamp import Timestamp
from repro.specs import CounterSpec, RGASpec, SetSpec


class TestFrontierCache:
    def test_replay_matches_spec(self):
        spec = SetSpec()
        cache = FrontierCache(spec)
        seq = [Label("add", ("a",)), Label("add", ("b",)),
               Label("remove", ("a",))]
        for prefix_len in range(len(seq) + 1):
            prefix = seq[:prefix_len]
            assert cache.replay(prefix) == spec.replay(prefix)

    def test_shared_prefixes_hit(self):
        spec = CounterSpec()
        cache = FrontierCache(spec)
        first = [Label("inc"), Label("inc")]
        cache.replay(first)
        assert cache.misses == 2 and cache.hits == 0
        # Fresh-uid labels with the same content walk the same trie path.
        second = [Label("inc"), Label("inc")]
        cache.replay(second)
        assert cache.misses == 2 and cache.hits == 2

    def test_rejection_cached_and_prefix_closed(self):
        spec = RGASpec()
        bad = Label("addAfter", ("ghost", "x"), ts=Timestamp(1, "r1"))
        cache = FrontierCache(spec)
        assert cache.first_rejected([bad]) == bad
        assert spec.first_rejected([bad]) == bad
        # The rejected node is cached: a second walk is a pure hit.
        misses = cache.misses
        assert not cache.admits([bad])
        assert cache.misses == misses

    def test_query_ok_matches_uncached_condition_iii(self):
        spec = CounterSpec()
        cache = FrontierCache(spec)
        inc = Label("inc")
        assert cache.query_ok([inc], Label("read", ret=1))
        assert not cache.query_ok([inc], Label("read", ret=2))
        assert cache.query_ok([], Label("read", ret=0))

    def test_max_nodes_bounds_memory_not_answers(self):
        spec = CounterSpec()
        cache = FrontierCache(spec, max_nodes=1)  # root only
        seq = [Label("inc"), Label("inc")]
        assert cache.replay(seq) == spec.replay(seq)
        assert len(cache) == 1
        assert cache.unattached > 0
        # Still correct on repeats (recomputed, never attached).
        assert cache.query_ok(seq, Label("read", ret=2))


def _counter_history(ret):
    """inc at r1 pos 0, read(ret) at r1 pos 1, seeing the inc."""
    inc = Label("inc", origin="r1")
    read = Label("read", ret=ret, origin="r1")
    history = History([inc, read], [(inc, read)])
    return history, [inc, read]


def _isomorphic_counter_history(ret):
    """Same content as :func:`_counter_history`, fresh uids."""
    return _counter_history(ret)


class TestVerdictMemo:
    def test_isomorphic_histories_share_one_verdict(self):
        ctx = RACheckContext(CounterSpec(), lin_class="EO")
        h1, order1 = _counter_history(1)
        r1 = ctx.check(h1, order1)
        assert r1.ok
        h2, order2 = _isomorphic_counter_history(1)
        r2 = ctx.check(h2, order2)
        assert ctx.stats.checks == 2
        assert ctx.stats.verdict_hits == 1
        assert r2 is r1  # memoized result returned as-is

    def test_failing_verdict_preserved_through_memo(self):
        # The negative case: a broken execution (read exceeds its visible
        # updates, the shape every CRDT mutant produces) must keep failing
        # on the memo hit — a cache that "heals" failures is unsound.
        ctx = RACheckContext(CounterSpec(), lin_class="EO")
        h1, order1 = _counter_history(5)
        r1 = ctx.check(h1, order1)
        assert not r1.ok
        h2, order2 = _isomorphic_counter_history(5)
        r2 = ctx.check(h2, order2)
        assert ctx.stats.verdict_hits == 1
        assert not r2.ok
        assert r2.reason == r1.reason

    def test_distinct_histories_do_not_collide(self):
        ctx = RACheckContext(CounterSpec(), lin_class="EO")
        good, good_order = _counter_history(1)
        bad, bad_order = _counter_history(2)
        assert ctx.check(good, good_order).ok
        assert not ctx.check(bad, bad_order).ok
        assert ctx.stats.verdict_hits == 0

    def test_unkeyed_history_still_checked(self):
        ctx = RACheckContext(CounterSpec(), lin_class="EO")
        h, order = _counter_history(1)
        # A generation order that misses one of the history's labels cannot
        # be canonicalized; the check runs unmemoized.
        result = ctx.check(h, order[:1])
        assert result.ok
        assert ctx.stats.unkeyed == 1

    def test_to_class_checks_timestamp_order(self):
        ctx = RACheckContext(CounterSpec(), lin_class="TO")
        h, order = _counter_history(1)
        assert ctx.check(h, order).ok
        assert ctx.check(*_counter_history(1)).ok
        assert ctx.stats.verdict_hits == 1

    def test_rejects_unknown_lin_class(self):
        with pytest.raises(ValueError):
            RACheckContext(CounterSpec(), lin_class="XX")


class TestConditionISkip:
    def test_backward_visibility_still_caught(self):
        # Visibility running *against* the generation order (impossible in
        # runtime executions, possible in hand-built histories) must
        # disable the EO condition-(i) skip: with spec-admissible updates
        # the only failing condition is (i) itself.
        a = Label("add", ("a",), origin="r1")
        b = Label("add", ("b",), origin="r1")
        history = History([a, b], [(b, a)])  # b visible to a, generated after
        result = execution_order_check(history, SetSpec(), [a, b])
        assert not result.ok
        assert "visibility" in result.reason
        ctx = RACheckContext(SetSpec(), lin_class="EO")
        assert not ctx.check(history, [a, b]).ok

    def test_check_vis_false_skips_condition_i(self):
        # Explicitly skipping condition (i) on the same history makes the
        # check pass — demonstrating the skip is exactly condition (i) and
        # so must only ever be applied to forward-edge histories.
        a = Label("add", ("a",), origin="r1")
        b = Label("add", ("b",), origin="r1")
        history = History([a, b], [(b, a)])
        assert execution_order_check(
            history, SetSpec(), [a, b], check_vis=False, want_witness=False
        ).ok

    def test_violation_transitive_through_query(self):
        # u1 → q → u2 in vis: the candidate u2·u1 contradicts the closure
        # even though no *direct* update-update edge exists.  The linear
        # ancestor DP must follow paths through queries.
        u1 = Label("inc", origin="r1")
        q = Label("read", ret=1, origin="r2")
        u2 = Label("inc", origin="r2")
        history = History([u1, q, u2], [(u1, q), (q, u2)])
        assert _violates_visibility(history, {u2: 0, u1: 1})
        assert not _violates_visibility(history, {u1: 0, u2: 1})
        result = check_update_order(history, CounterSpec(), [u2, u1])
        assert not result.ok
        assert "visibility" in result.reason
        assert result.culprit is not None
