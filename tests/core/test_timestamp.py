"""Timestamps, ⊥, generators, version vectors."""

import pytest

from repro.core.timestamp import (
    BOTTOM,
    Timestamp,
    TimestampGenerator,
    VersionVector,
    max_timestamp,
)


class TestTimestampOrder:
    def test_counter_dominates(self):
        assert Timestamp(1, "r2") < Timestamp(2, "r1")

    def test_replica_breaks_ties(self):
        assert Timestamp(1, "r1") < Timestamp(1, "r2")

    def test_equal(self):
        assert Timestamp(3, "r1") == Timestamp(3, "r1")

    def test_not_equal_across_replicas(self):
        assert Timestamp(3, "r1") != Timestamp(3, "r2")

    def test_total_ordering_derived_ops(self):
        a, b = Timestamp(1, "r1"), Timestamp(2, "r1")
        assert a <= b and b >= a and b > a and not (a > b)

    def test_hashable(self):
        assert len({Timestamp(1, "r1"), Timestamp(1, "r1")}) == 1


class TestBottom:
    def test_bottom_below_everything(self):
        assert BOTTOM < Timestamp(0, "r1")
        assert BOTTOM < Timestamp(10 ** 9, "zz")

    def test_timestamp_not_below_bottom(self):
        assert not (Timestamp(1, "r1") < BOTTOM)

    def test_timestamp_greater_than_bottom(self):
        assert Timestamp(1, "r1") > BOTTOM

    def test_bottom_not_less_than_itself(self):
        assert not (BOTTOM < BOTTOM)

    def test_bottom_equals_itself_only(self):
        assert BOTTOM == BOTTOM
        assert BOTTOM != Timestamp(0, "r1")

    def test_bottom_is_singleton(self):
        from repro.core.timestamp import _Bottom

        assert _Bottom() is BOTTOM

    def test_bottom_hashable(self):
        assert len({BOTTOM, BOTTOM}) == 1


class TestTimestampGenerator:
    def test_fresh_increases_per_replica(self):
        gen = TimestampGenerator()
        first = gen.fresh("r1")
        second = gen.fresh("r1")
        assert first < second

    def test_fresh_unique_across_replicas(self):
        gen = TimestampGenerator()
        assert gen.fresh("r1") != gen.fresh("r2")

    def test_observe_advances_clock(self):
        gen = TimestampGenerator()
        gen.observe("r1", Timestamp(10, "r2"))
        assert gen.fresh("r1") > Timestamp(10, "r2")

    def test_observe_bottom_is_noop(self):
        gen = TimestampGenerator()
        gen.observe("r1", BOTTOM)
        assert gen.clock("r1") == 0

    def test_observe_smaller_is_noop(self):
        gen = TimestampGenerator()
        gen.fresh("r1")
        gen.fresh("r1")
        gen.observe("r1", Timestamp(1, "r2"))
        assert gen.clock("r1") == 2

    def test_shared_generator_orders_across_objects(self):
        # The ⊗ts property: after observing another object's timestamp,
        # fresh timestamps dominate it.
        gen = TimestampGenerator()
        other = gen.fresh("r2")
        gen.observe("r1", other)
        assert gen.fresh("r1") > other


class TestVersionVector:
    def test_empty_get(self):
        assert VersionVector().get("r1") == 0

    def test_bump(self):
        vv = VersionVector().bump("r1").bump("r1").bump("r2")
        assert vv.get("r1") == 2 and vv.get("r2") == 1

    def test_of_drops_zeros(self):
        assert VersionVector.of({"r1": 0, "r2": 3}) == VersionVector.of({"r2": 3})

    def test_join_pointwise_max(self):
        a = VersionVector.of({"r1": 2, "r2": 1})
        b = VersionVector.of({"r1": 1, "r2": 5, "r3": 1})
        j = a.join(b)
        assert j.get("r1") == 2 and j.get("r2") == 5 and j.get("r3") == 1

    def test_leq_reflexive(self):
        vv = VersionVector.of({"r1": 1})
        assert vv.leq(vv)

    def test_lt_strict(self):
        a = VersionVector.of({"r1": 1})
        b = VersionVector.of({"r1": 2})
        assert a.lt(b) and not b.lt(a) and not a.lt(a)

    def test_concurrent(self):
        a = VersionVector.of({"r1": 1})
        b = VersionVector.of({"r2": 1})
        assert a.concurrent(b) and b.concurrent(a)

    def test_join_is_upper_bound(self):
        a = VersionVector.of({"r1": 1, "r3": 2})
        b = VersionVector.of({"r2": 4})
        assert a.leq(a.join(b)) and b.leq(a.join(b))

    def test_hashable_and_equal(self):
        assert VersionVector.of({"r1": 1}) == VersionVector.of({"r1": 1})
        assert len({VersionVector.of({"r1": 1}), VersionVector.of({"r1": 1})}) == 1


class TestMaxTimestamp:
    def test_empty_is_bottom(self):
        assert max_timestamp([]) is BOTTOM

    def test_ignores_bottoms(self):
        assert max_timestamp([BOTTOM, Timestamp(2, "r1"), BOTTOM]) == Timestamp(2, "r1")

    def test_all_bottom(self):
        assert max_timestamp([BOTTOM, BOTTOM]) is BOTTOM

    def test_picks_maximum(self):
        tss = [Timestamp(1, "r2"), Timestamp(3, "r1"), Timestamp(2, "r9")]
        assert max_timestamp(tss) == Timestamp(3, "r1")


class TestGeneratorSnapshot:
    def test_snapshot_is_a_copy(self):
        gen = TimestampGenerator()
        gen.fresh("r1")
        token = gen.snapshot()
        gen.fresh("r1")
        assert token == {"r1": 1}
        assert gen.clock("r1") == 2

    def test_restore_rewinds_clocks(self):
        gen = TimestampGenerator()
        gen.fresh("r1")
        gen.fresh("r2")
        token = gen.snapshot()
        gen.fresh("r1")
        gen.fresh("r3")
        gen.restore(token)
        assert gen.clock("r1") == 1
        assert gen.clock("r2") == 1
        assert gen.clock("r3") == 0

    def test_restore_detaches_from_token(self):
        gen = TimestampGenerator()
        token = {"r1": 5}
        gen.restore(token)
        gen.fresh("r1")
        assert token == {"r1": 5}  # caller's mapping untouched
        assert gen.clock("r1") == 6
