"""History / linearization rendering."""

from repro.core.history import History
from repro.core.label import Label
from repro.core.render import (
    render_history,
    render_linearization,
    transitive_reduction,
)
from repro.scenarios import fig8_rga


class TestTransitiveReduction:
    def test_chain_reduces(self):
        a, b, c = Label("m"), Label("m"), Label("m")
        h = History([a, b, c], [(a, b), (b, c), (a, c)])
        assert transitive_reduction(h) == {(a, b), (b, c)}

    def test_antichain_empty(self):
        a, b = Label("m"), Label("m")
        assert transitive_reduction(History([a, b])) == set()


class TestRenderHistory:
    def test_lanes_by_origin(self):
        a = Label("inc", origin="r1")
        b = Label("dec", origin="r2")
        text = render_history(History([a, b]), [a, b])
        assert "r1:" in text and "r2:" in text
        assert "inc()" in text and "dec()" in text

    def test_cross_replica_edges_listed(self):
        a = Label("inc", origin="r1")
        b = Label("inc", origin="r2")
        text = render_history(History([a, b], [(a, b)]), [a, b])
        assert "≺" in text

    def test_fig8_renders(self):
        scenario = fig8_rga()
        text = render_history(
            scenario.history, scenario.system.generation_order, title="Fig. 8"
        )
        assert text.startswith("Fig. 8:")
        assert "addAfter" in text and "read" in text


class TestRenderLinearization:
    def test_chain(self):
        a = Label("inc")
        b = Label("read", ret=1)
        text = render_linearization([a, b], title="witness")
        assert text.startswith("witness:")
        assert "inc()" in text and "⇒1" in text
