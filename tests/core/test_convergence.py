"""Convergence / SEC oracles."""

from repro.core.convergence import (
    all_states_equal,
    check_convergence,
    grouped_by_seen,
)
from repro.core.label import Label


class TestAllStatesEqual:
    def test_empty(self):
        assert all_states_equal([])

    def test_singleton(self):
        assert all_states_equal([frozenset({"a"})])

    def test_equal(self):
        assert all_states_equal([1, 1, 1])

    def test_unequal(self):
        assert not all_states_equal([1, 2])


class TestConvergence:
    def _views(self, groups):
        views = {}
        for i, (seen, state) in enumerate(groups):
            views[f"r{i}"] = (frozenset(seen), state)
        return views

    def test_same_seen_same_state_ok(self):
        a = Label("m")
        views = self._views([({a}, 1), ({a}, 1)])
        ok, offenders = check_convergence(views)
        assert ok and offenders == []

    def test_same_seen_different_state_fails(self):
        a = Label("m")
        views = self._views([({a}, 1), ({a}, 2)])
        ok, offenders = check_convergence(views)
        assert not ok and set(offenders) == {"r0", "r1"}

    def test_different_seen_not_compared(self):
        a, b = Label("m"), Label("m")
        views = self._views([({a}, 1), ({b}, 2)])
        ok, _ = check_convergence(views)
        assert ok

    def test_grouping(self):
        a = Label("m")
        views = self._views([({a}, 1), ({a}, 1), (set(), 0)])
        groups = grouped_by_seen(views)
        assert groups == [["r0", "r1"]]
