"""The RA-linearizability checkers on hand-built histories (Def. 3.5/3.7)."""

import pytest

from repro.core.history import History
from repro.core.label import Label
from repro.core.ralin import (
    check_ra_linearizable,
    check_update_order,
    execution_order_check,
    timestamp_order_check,
)
from repro.core.timestamp import Timestamp
from repro.specs import CounterSpec, RGASpec, SetSpec
from repro.core.sentinels import ROOT


class TestDefinition35:
    def test_sequential_counter_history(self):
        inc = Label("inc")
        read = Label("read", ret=1)
        h = History([inc, read], [(inc, read)])
        assert check_ra_linearizable(h, CounterSpec()).ok

    def test_query_sees_subsequence(self):
        # Two concurrent incs; a read that saw only one may return 1.
        inc1, inc2 = Label("inc"), Label("inc")
        read = Label("read", ret=1)
        h = History([inc1, inc2, read], [(inc1, read)])
        result = check_ra_linearizable(h, CounterSpec())
        assert result.ok

    def test_query_cannot_exceed_visible(self):
        inc1, inc2 = Label("inc"), Label("inc")
        read = Label("read", ret=2)  # saw only inc1, cannot return 2
        h = History([inc1, inc2, read], [(inc1, read)])
        assert not check_ra_linearizable(h, CounterSpec())

    def test_reads_with_different_visible_sets(self):
        inc1, inc2 = Label("inc"), Label("inc")
        read1 = Label("read", ret=1)
        read2 = Label("read", ret=2)
        h = History(
            [inc1, inc2, read1, read2],
            [(inc1, read1), (inc1, read2), (inc2, read2)],
        )
        assert check_ra_linearizable(h, CounterSpec()).ok

    def test_visibility_constrains_update_order(self):
        # Each addAfter(◦,x) prepends, so read ⇒ b·a needs a linearized
        # before b — impossible when visibility orders b before a.
        a = Label("addAfter", (ROOT, "a"), ts=Timestamp(1, "r1"))
        b = Label("addAfter", (ROOT, "b"), ts=Timestamp(2, "r1"))
        read = Label("read", ret=("b", "a"))
        h = History([a, b, read], [(b, a), (a, read), (b, read)])
        assert not check_ra_linearizable(h, RGASpec())
        h_ok = History([a, b, read], [(a, b), (a, read), (b, read)])
        assert check_ra_linearizable(h_ok, RGASpec()).ok

    def test_witness_is_reported_and_valid(self):
        inc1, inc2 = Label("inc"), Label("inc")
        read = Label("read", ret=2)
        h = History([inc1, inc2, read], [(inc1, read), (inc2, read)])
        result = check_ra_linearizable(h, CounterSpec())
        assert result.ok
        assert set(result.update_order) == {inc1, inc2}
        assert len(result.linearization) == 3
        # Witness replays successfully.
        assert check_update_order(h, CounterSpec(), result.update_order).ok

    def test_empty_history(self):
        assert check_ra_linearizable(History([]), CounterSpec()).ok

    def test_updates_must_be_admitted_even_unobserved(self):
        # Condition (ii): the full update sequence must be in the spec.
        bad = Label("addAfter", ("ghost", "x"), ts=Timestamp(1, "r1"))
        h = History([bad])
        assert not check_ra_linearizable(h, RGASpec())

    def test_max_orders_gives_up(self):
        incs = [Label("inc") for _ in range(4)]
        read = Label("read", ret=99)  # unsatisfiable
        h = History(incs + [read], [(i, read) for i in incs])
        result = check_ra_linearizable(h, CounterSpec(), max_orders=2)
        assert not result.ok and result.explored <= 2

    def test_prune_with_spec_equals_unpruned(self):
        a = Label("add", ("a",))
        r = Label("remove", ("a",))
        read = Label("read", ret=frozenset())
        h = History([a, r, read], [(a, r), (a, read), (r, read)])
        pruned = check_ra_linearizable(h, SetSpec(), prune_with_spec=True)
        naive = check_ra_linearizable(h, SetSpec(), prune_with_spec=False)
        assert pruned.ok == naive.ok is True


class TestCheckUpdateOrder:
    def test_rejects_wrong_cover(self):
        inc = Label("inc")
        h = History([inc])
        assert not check_update_order(h, CounterSpec(), [])

    def test_rejects_visibility_violation(self):
        inc1, inc2 = Label("inc"), Label("inc")
        h = History([inc1, inc2], [(inc1, inc2)])
        assert not check_update_order(h, CounterSpec(), [inc2, inc1])
        assert check_update_order(h, CounterSpec(), [inc1, inc2]).ok

    def test_rejects_spec_violation(self):
        bad = Label("addAfter", ("ghost", "x"), ts=Timestamp(1, "r1"))
        h = History([bad])
        result = check_update_order(h, RGASpec(), [bad])
        assert not result.ok and result.culprit == bad

    def test_reports_unjustified_query(self):
        inc = Label("inc")
        read = Label("read", ret=5)
        h = History([inc, read], [(inc, read)])
        result = check_update_order(h, CounterSpec(), [inc])
        assert not result.ok and result.culprit == read

    def test_mixed_roles_raise_without_rewriting(self):
        # A label that is neither query nor update for the spec.
        odd = Label("frobnicate")
        h = History([odd])
        with pytest.raises(KeyError):
            check_ra_linearizable(h, CounterSpec())


class TestCandidateCheckers:
    def _three_inc_history(self):
        incs = [Label("inc") for _ in range(3)]
        read = Label("read", ret=3)
        edges = [(i, read) for i in incs]
        return History(incs + [read], edges), incs + [read]

    def test_execution_order_accepts_counter(self):
        h, order = self._three_inc_history()
        assert execution_order_check(h, CounterSpec(), order).ok

    def test_execution_order_needs_full_generation_order(self):
        h, order = self._three_inc_history()
        with pytest.raises(KeyError):
            execution_order_check(h, CounterSpec(), order[:-2])

    def test_timestamp_order_sorts_by_ts(self):
        a = Label("addAfter", (ROOT, "a"), ts=Timestamp(1, "r1"))
        b = Label("addAfter", (ROOT, "b"), ts=Timestamp(2, "r2"))
        read = Label("read", ret=("b", "a"))
        # generation order b, a; timestamp order a, b
        h = History([a, b, read], [(a, read), (b, read)])
        result = timestamp_order_check(h, RGASpec(), [b, a, read])
        assert result.ok
        assert result.update_order == [a, b]

    def test_execution_order_fails_where_timestamp_order_succeeds(self):
        a = Label("addAfter", (ROOT, "a"), ts=Timestamp(1, "r1"))
        b = Label("addAfter", (ROOT, "b"), ts=Timestamp(2, "r2"))
        read = Label("read", ret=("b", "a"))
        h = History([a, b, read], [(a, read), (b, read)])
        assert not execution_order_check(h, RGASpec(), [b, a, read]).ok
        assert timestamp_order_check(h, RGASpec(), [b, a, read]).ok
