"""Regression: specification instances are stateless (see docs/api.md).

The incremental-checking layer (PR 2) constructs one spec per registry
entry and shares it across every configuration of an exhaustive run —
through direct ``replay`` calls, through a :class:`FrontierCache`, and
(in the parallel pipeline) across all checks of a worker process.  That
sharing is only sound if ``replay``/``step_frontier``/``first_rejected``
are pure: all evolving state lives in the *frontier* values they return,
never on the spec instance.  These tests pin that contract down so a
future spec with instance-level mutable state fails loudly instead of
corrupting cached verdicts.
"""

import copy

from repro.core.label import Label
from repro.core.spec import FrontierCache
from repro.core.timestamp import Timestamp
from repro.specs import CounterSpec, RGASpec, SetSpec
from repro.core.sentinels import ROOT


def _sequences():
    """(spec factory, admitted sequence) pairs across spec families."""
    return [
        (CounterSpec, [Label("inc"), Label("inc"), Label("read", ret=2)]),
        (SetSpec, [Label("add", ("a",)), Label("remove", ("a",)),
                   Label("read", ret=frozenset())]),
        (RGASpec, [Label("addAfter", (ROOT, "a"), ts=Timestamp(1, "r1")),
                   Label("addAfter", ("a", "b"), ts=Timestamp(2, "r1")),
                   Label("read", ret=("a", "b"))]),
    ]


def test_replay_does_not_mutate_spec():
    for make_spec, sequence in _sequences():
        spec = make_spec()
        before = copy.deepcopy(vars(spec))
        assert spec.replay(sequence)
        assert spec.first_rejected(sequence) is None
        frontier = spec.initial_frontier()
        for label in sequence:
            frontier = spec.step_frontier(frontier, label)
        assert vars(spec) == before, (
            f"{make_spec.__name__} mutated instance state during replay"
        )


def test_step_frontier_does_not_mutate_input_frontier():
    for make_spec, sequence in _sequences():
        spec = make_spec()
        frontier = spec.initial_frontier()
        snapshot = set(frontier)
        spec.step_frontier(frontier, sequence[0])
        assert set(frontier) == snapshot


def test_interleaved_replays_are_independent():
    # Two replays through ONE instance, advanced step by step in lockstep,
    # must agree with two isolated replays — the frontier-trie sharing in
    # FrontierCache depends on exactly this.
    for make_spec, sequence in _sequences():
        spec = make_spec()
        isolated = [spec.replay(sequence[:i]) for i in range(len(sequence))]
        f1 = spec.initial_frontier()
        f2 = spec.initial_frontier()
        for i, label in enumerate(sequence[:-1]):
            assert f1 == isolated[i] and f2 == isolated[i]
            f1 = spec.step_frontier(f1, label)
            f2 = spec.step_frontier(f2, label)
            assert f1 == f2


def test_frontier_cache_does_not_mutate_spec():
    for make_spec, sequence in _sequences():
        spec = make_spec()
        before = copy.deepcopy(vars(spec))
        cache = FrontierCache(spec)
        assert cache.replay(sequence) == spec.replay(sequence)
        cache.replay(sequence)  # pure-hit walk
        assert vars(spec) == before


def test_one_instance_serves_many_histories():
    # The exhaustive pipeline's sharing pattern in miniature: one spec,
    # many unrelated sequences, stable answers regardless of order.
    spec = CounterSpec()
    good = [Label("inc"), Label("read", ret=1)]
    bad = [Label("inc"), Label("read", ret=7)]
    first = (spec.admits(good), spec.admits(bad))
    for _ in range(3):
        assert (spec.admits(good), spec.admits(bad)) == first
    assert first == (True, False)
