"""Operation labels."""

from repro.core.label import Label, fresh_uid
from repro.core.timestamp import BOTTOM, Timestamp


class TestLabel:
    def test_uids_are_unique(self):
        assert Label("m").uid != Label("m").uid

    def test_fresh_uid_monotone(self):
        assert fresh_uid() < fresh_uid()

    def test_args_frozen(self):
        label = Label("m", ([1, 2], {3}))
        assert label.args == ((1, 2), frozenset({3}))
        hash(label)

    def test_ret_frozen(self):
        label = Label("m", ret={"a", "b"})
        assert label.ret == frozenset({"a", "b"})

    def test_default_ts_is_bottom(self):
        assert Label("m").ts is BOTTOM
        assert not Label("m").generates_timestamp()

    def test_generates_timestamp(self):
        assert Label("m", ts=Timestamp(1, "r1")).generates_timestamp()

    def test_with_ret(self):
        label = Label("m", (1,))
        other = label.with_ret([5])
        assert other.ret == (5,)
        assert other.uid == label.uid
        assert label.ret is None

    def test_with_obj(self):
        assert Label("m").with_obj("o2").obj == "o2"

    def test_equality_includes_uid(self):
        a = Label("m", (1,), uid=77)
        b = Label("m", (1,), uid=77)
        c = Label("m", (1,), uid=78)
        assert a == b and a != c

    def test_repr_mentions_method_and_args(self):
        text = repr(Label("add", ("a",), ret=3, obj="o1"))
        assert "add" in text and "'a'" in text and "o1" in text
