"""JSON encoding of the value domain."""

import json

import pytest

from repro.core.encoding import decode, encode
from repro.core.freeze import FrozenDict
from repro.core.timestamp import BOTTOM, Timestamp, VersionVector


ROUND_TRIPS = [
    None,
    True,
    42,
    -3.5,
    "hello",
    (1, 2, "x"),
    frozenset({1, 2}),
    BOTTOM,
    Timestamp(3, "r1"),
    VersionVector.of({"r1": 2, "r2": 1}),
    FrozenDict({"a": 1}),
    (frozenset({("a", Timestamp(1, "r2"))}), "nested"),
]


@pytest.mark.parametrize("value", ROUND_TRIPS, ids=repr)
def test_round_trip(value):
    assert decode(encode(value)) == value


@pytest.mark.parametrize("value", ROUND_TRIPS, ids=repr)
def test_json_serializable(value):
    assert decode(json.loads(json.dumps(encode(value)))) == value


def test_bottom_identity():
    assert decode(encode(BOTTOM)) is BOTTOM


def test_unencodable_raises():
    with pytest.raises(TypeError):
        encode(object())


def test_undecodable_raises():
    with pytest.raises(TypeError):
        decode({"__repro__": "martian"})
