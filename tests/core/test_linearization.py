"""Linear-extension machinery: topological orders, merging, timestamps."""

from repro.core.history import History
from repro.core.label import Label
from repro.core.linearization import (
    history_timestamp,
    induced_predecessors,
    iter_topological_orders,
    merge_queries,
    ts_sort_key,
    visible_updates,
)
from repro.core.timestamp import BOTTOM, Timestamp


def labels(n):
    return [Label(f"m{i}") for i in range(n)]


class TestInducedPredecessors:
    def test_direct_edges(self):
        a, b = labels(2)
        h = History([a, b], [(a, b)])
        assert induced_predecessors(h, [a, b]) == {a: set(), b: {a}}

    def test_order_through_dropped_label(self):
        a, b, c = labels(3)
        h = History([a, b, c], [(a, b), (b, c)])
        preds = induced_predecessors(h, [a, c])
        assert preds[c] == {a}


class TestTopologicalOrders:
    def test_all_orders_of_antichain(self):
        a, b, c = labels(3)
        orders = list(iter_topological_orders([a, b, c], {}))
        assert len(orders) == 6

    def test_respects_partial_order(self):
        a, b, c = labels(3)
        preds = {b: {a}}
        orders = list(iter_topological_orders([a, b, c], preds))
        assert len(orders) == 3
        for order in orders:
            assert order.index(a) < order.index(b)

    def test_max_orders_cap(self):
        nodes = labels(4)
        orders = list(iter_topological_orders(nodes, {}, max_orders=5))
        assert len(orders) == 5

    def test_prune_cuts_branches(self):
        a, b = labels(2)
        seen = []

        def prune(prefix, candidate):
            seen.append((len(prefix), candidate))
            return candidate != b or prefix  # never start with b

        orders = list(iter_topological_orders([a, b], {}, prune=prune))
        assert orders == [[a, b]]

    def test_deterministic_by_uid(self):
        nodes = labels(3)
        first = list(iter_topological_orders(nodes, {}))
        second = list(iter_topological_orders(nodes, {}))
        assert first == second


class TestMergeQueries:
    def test_queries_placed_after_visible_updates(self):
        u1, u2 = Label("u1"), Label("u2")
        q = Label("q")
        h = History([u1, u2, q], [(u1, q)])
        full = merge_queries(h, [u1, u2], [q])
        assert full.index(u1) < full.index(q)
        assert set(full) == {u1, u2, q}

    def test_updates_keep_given_order(self):
        u1, u2, u3 = labels(3)
        h = History([u1, u2, u3])
        full = merge_queries(h, [u3, u1, u2], [])
        assert full == [u3, u1, u2]

    def test_query_before_update_that_sees_it(self):
        q, u = Label("q"), Label("u")
        h = History([q, u], [(q, u)])
        full = merge_queries(h, [u], [q])
        assert full == [q, u]


class TestTimestampHelpers:
    def test_ts_sort_key_bottom_first(self):
        assert ts_sort_key(BOTTOM) < ts_sort_key(Timestamp(0, "r1"))

    def test_ts_sort_key_orders_timestamps(self):
        assert ts_sort_key(Timestamp(1, "r2")) < ts_sort_key(Timestamp(2, "r1"))

    def test_history_timestamp_own(self):
        label = Label("m", ts=Timestamp(4, "r1"))
        h = History([label])
        assert history_timestamp(h, label) == Timestamp(4, "r1")

    def test_history_timestamp_virtual(self):
        gen = Label("m", ts=Timestamp(4, "r1"))
        query = Label("q")
        h = History([gen, query], [(gen, query)])
        assert history_timestamp(h, query) == Timestamp(4, "r1")

    def test_history_timestamp_virtual_no_visible(self):
        query = Label("q")
        h = History([query])
        assert history_timestamp(h, query) is BOTTOM

    def test_visible_updates(self):
        u, q = Label("u"), Label("q")
        h = History([u, q], [(u, q)])
        assert visible_updates(h, q, frozenset({u})) == {u}
