"""freeze() and FrozenDict."""

import pytest

from repro.core.freeze import FrozenDict, freeze


class TestFreeze:
    def test_scalars_pass_through(self):
        assert freeze(3) == 3
        assert freeze("x") == "x"
        assert freeze(None) is None

    def test_list_to_tuple(self):
        assert freeze([1, 2]) == (1, 2)
        assert isinstance(freeze([1, 2]), tuple)

    def test_set_to_frozenset(self):
        assert freeze({1, 2}) == frozenset({1, 2})

    def test_nested(self):
        frozen = freeze([{1, 2}, {"k": [3]}])
        assert frozen[0] == frozenset({1, 2})
        assert frozen[1]["k"] == (3,)

    def test_result_hashable(self):
        hash(freeze([{"a": [1, {2}]}]))


class TestFrozenDict:
    def test_lookup(self):
        fd = FrozenDict({"a": 1})
        assert fd["a"] == 1 and fd.get("b", 0) == 0

    def test_mutation_raises(self):
        fd = FrozenDict({"a": 1})
        with pytest.raises(TypeError):
            fd["b"] = 2
        with pytest.raises(TypeError):
            del fd["a"]
        with pytest.raises(TypeError):
            fd.update({"c": 3})
        with pytest.raises(TypeError):
            fd.pop("a")
        with pytest.raises(TypeError):
            fd.clear()

    def test_hash_consistent_with_equality(self):
        assert hash(FrozenDict({"a": 1, "b": 2})) == hash(
            FrozenDict({"b": 2, "a": 1})
        )
        assert FrozenDict({"a": 1}) == FrozenDict({"a": 1})

    def test_set_returns_new(self):
        fd = FrozenDict({"a": 1})
        fd2 = fd.set("b", 2)
        assert "b" not in fd and fd2["b"] == 2

    def test_discard(self):
        fd = FrozenDict({"a": 1, "b": 2})
        assert fd.discard("a") == FrozenDict({"b": 2})
        assert fd.discard("zz") == fd

    def test_usable_as_dict_key(self):
        table = {FrozenDict({"a": 1}): "hit"}
        assert table[FrozenDict({"a": 1})] == "hit"
