"""Histories and the visibility relation."""

import pytest

from repro.core.errors import IllFormedHistory
from repro.core.history import History
from repro.core.label import Label


def labels(n):
    return [Label(f"m{i}") for i in range(n)]


class TestWellFormedness:
    def test_empty_history(self):
        h = History([])
        assert len(h) == 0 and h.closure() == frozenset()

    def test_edge_outside_labels_rejected(self):
        a, b = labels(2)
        with pytest.raises(IllFormedHistory):
            History([a], [(a, b)])

    def test_self_edge_rejected(self):
        (a,) = labels(1)
        with pytest.raises(IllFormedHistory):
            History([a], [(a, a)])

    def test_cycle_rejected(self):
        a, b, c = labels(3)
        with pytest.raises(IllFormedHistory):
            History([a, b, c], [(a, b), (b, c), (c, a)])

    def test_two_cycle_rejected(self):
        a, b = labels(2)
        with pytest.raises(IllFormedHistory):
            History([a, b], [(a, b), (b, a)])

    def test_acyclic_accepted(self):
        a, b, c = labels(3)
        History([a, b, c], [(a, b), (b, c), (a, c)])


class TestClosureAndQueries:
    def test_closure_transitive(self):
        a, b, c = labels(3)
        h = History([a, b, c], [(a, b), (b, c)])
        assert (a, c) in h.closure()

    def test_sees(self):
        a, b, c = labels(3)
        h = History([a, b, c], [(a, b), (b, c)])
        assert h.sees(a, c) and not h.sees(c, a)

    def test_visible_to(self):
        a, b, c = labels(3)
        h = History([a, b, c], [(a, b), (b, c)])
        assert h.visible_to(c) == {a, b}
        assert h.visible_to(a) == frozenset()

    def test_visibly_after(self):
        a, b, c = labels(3)
        h = History([a, b, c], [(a, b), (b, c)])
        assert h.visibly_after(a) == {b, c}

    def test_concurrent(self):
        a, b, c = labels(3)
        h = History([a, b, c], [(a, c), (b, c)])
        assert h.concurrent(a, b)
        assert not h.concurrent(a, c)
        assert not h.concurrent(a, a)

    def test_concurrent_pairs(self):
        a, b, c = labels(3)
        h = History([a, b, c], [(a, c), (b, c)])
        assert h.concurrent_pairs() == [(a, b)]

    def test_contains(self):
        a, b = labels(2)
        h = History([a])
        assert a in h and b not in h


class TestDerivedHistories:
    def test_restrict_keeps_indirect_order(self):
        a, b, c = labels(3)
        h = History([a, b, c], [(a, b), (b, c)])
        restricted = h.restrict({a, c})
        assert restricted.sees(a, c)
        assert b not in restricted

    def test_project_by_object(self):
        a = Label("m", obj="o1")
        b = Label("m", obj="o2")
        c = Label("m", obj="o1")
        h = History([a, b, c], [(a, b), (b, c)])
        proj = h.project("o1")
        assert proj.labels == {a, c}
        assert proj.sees(a, c)  # order through b preserved

    def test_objects(self):
        a = Label("m", obj="o1")
        b = Label("m", obj="o2")
        assert History([a, b]).objects() == {"o1", "o2"}


class TestConsistency:
    def test_is_consistent_with_linear_extension(self):
        a, b, c = labels(3)
        h = History([a, b, c], [(a, b)])
        assert h.is_consistent_with([a, b, c])
        assert h.is_consistent_with([a, c, b])
        assert h.is_consistent_with([c, a, b])
        assert not h.is_consistent_with([b, a, c])

    def test_is_consistent_requires_all_labels(self):
        a, b = labels(2)
        h = History([a, b])
        assert not h.is_consistent_with([a])

    def test_equality_by_closure(self):
        a, b, c = labels(3)
        h1 = History([a, b, c], [(a, b), (b, c)])
        h2 = History([a, b, c], [(a, b), (b, c), (a, c)])
        assert h1 == h2
        assert hash(h1) == hash(h2)
