"""Specification replay machinery and composed specifications."""

import pytest

from repro.core.label import Label
from repro.core.spec import ComposedSpec, Role
from repro.specs import CounterSpec, SetSpec


class TestReplay:
    def test_admits_simple_sequence(self):
        spec = CounterSpec()
        seq = [Label("inc"), Label("inc"), Label("dec")]
        assert spec.admits(seq)

    def test_query_validated_against_state(self):
        spec = CounterSpec()
        good = [Label("inc"), Label("read", ret=1)]
        bad = [Label("inc"), Label("read", ret=0)]
        assert spec.admits(good)
        assert not spec.admits(bad)

    def test_first_rejected(self):
        spec = CounterSpec()
        bad_read = Label("read", ret=9)
        assert spec.first_rejected([Label("inc"), bad_read]) == bad_read
        assert spec.first_rejected([Label("inc")]) is None

    def test_replay_returns_final_states(self):
        spec = CounterSpec()
        states = spec.replay([Label("inc"), Label("inc")])
        assert states == frozenset({2})

    def test_empty_sequence_is_initial(self):
        spec = SetSpec()
        assert spec.replay([]) == frozenset({frozenset()})

    def test_roles(self):
        spec = CounterSpec()
        assert spec.role("inc") is Role.UPDATE
        assert spec.role("read") is Role.QUERY
        assert spec.is_update(Label("inc"))
        assert spec.is_query(Label("read", ret=0))

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            CounterSpec().role("frobnicate")


class TestComposedSpec:
    def make(self):
        return ComposedSpec({"c": CounterSpec(), "s": SetSpec()})

    def test_interleavings_admitted(self):
        spec = self.make()
        seq = [
            Label("inc", obj="c"),
            Label("add", ("a",), obj="s"),
            Label("inc", obj="c"),
            Label("read", obj="c", ret=2),
            Label("read", obj="s", ret=frozenset({"a"})),
        ]
        assert spec.admits(seq)

    def test_projection_must_be_admitted(self):
        spec = self.make()
        seq = [
            Label("inc", obj="c"),
            Label("read", obj="c", ret=7),  # wrong counter value
        ]
        assert not spec.admits(seq)

    def test_labels_of_unknown_object_rejected(self):
        spec = self.make()
        assert not spec.admits([Label("inc", obj="zz")])

    def test_role_dispatch_through_object(self):
        spec = self.make()
        assert spec.is_update(Label("add", ("a",), obj="s"))
        assert spec.is_query(Label("read", obj="s", ret=frozenset()))

    def test_name_mentions_components(self):
        assert "Counter" in self.make().name and "Set" in self.make().name
