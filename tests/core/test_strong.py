"""The classic strong-linearizability-style checker."""

from repro.core.history import History
from repro.core.label import Label
from repro.core.strong import check_strong_linearizable
from repro.specs import CounterSpec, SetSpec


class TestStrongChecker:
    def test_sequential_history_linearizable(self):
        inc = Label("inc")
        read = Label("read", ret=1)
        h = History([inc, read], [(inc, read)])
        witness = check_strong_linearizable(h, CounterSpec())
        assert witness == [inc, read]

    def test_query_must_see_whole_prefix(self):
        # Two incs, read saw only one but returns 1 — strong linearizability
        # can still order the read between them.
        inc1, inc2 = Label("inc"), Label("inc")
        read = Label("read", ret=1)
        h = History([inc1, inc2, read], [(inc1, read)])
        assert check_strong_linearizable(h, CounterSpec()) is not None

    def test_unsatisfiable_read(self):
        inc = Label("inc")
        read = Label("read", ret=5)
        h = History([inc, read], [(inc, read)])
        assert check_strong_linearizable(h, CounterSpec()) is None

    def test_stale_read_ordered_early(self):
        # A read returning 0 while an inc is concurrent: linearize read first.
        inc = Label("inc")
        read = Label("read", ret=0)
        h = History([inc, read])
        witness = check_strong_linearizable(h, CounterSpec())
        assert witness is not None and witness.index(read) < witness.index(inc)

    def test_stale_read_after_visible_update_fails(self):
        # read saw the inc, so it cannot return 0 under the strong criterion.
        inc = Label("inc")
        read = Label("read", ret=0)
        h = History([inc, read], [(inc, read)])
        assert check_strong_linearizable(h, CounterSpec()) is None

    def test_set_semantics(self):
        add = Label("add", ("a",))
        rem = Label("remove", ("a",))
        read = Label("read", ret=frozenset())
        h = History([add, rem, read], [(add, rem), (rem, read), (add, read)])
        assert check_strong_linearizable(h, SetSpec()) is not None

    def test_witness_consistent_with_visibility(self):
        a, b = Label("inc"), Label("inc")
        read = Label("read", ret=2)
        h = History([a, b, read], [(a, b), (b, read), (a, read)])
        witness = check_strong_linearizable(h, CounterSpec())
        assert witness is not None
        assert h.is_consistent_with(witness)
