"""Candidate-order details: TO tie-breaking and failure attribution.

Sec. 4.2 prescribes the timestamp-order candidate as sorting updates by
``tsh`` with ties broken by generation position and then uid; Def. 3.5
failures should point at the label where the condition broke (the
``culprit``), which the mutation reports surface.
"""

from repro.core.history import History
from repro.core.label import Label
from repro.core.ralin import (
    check_update_order,
    timestamp_order_check,
)
from repro.core.spec import FrontierCache
from repro.core.timestamp import Timestamp
from repro.specs import CounterSpec, RGASpec, SetSpec
from repro.core.sentinels import ROOT


class TestTimestampOrderTieBreaking:
    def test_equal_timestamps_break_by_generation_position(self):
        ts = Timestamp(1, "r1")
        a = Label("add", ("a",), ts=ts, origin="r1")
        b = Label("add", ("b",), ts=ts, origin="r1")
        history = History([a, b])
        forward = timestamp_order_check(history, SetSpec(), [a, b])
        assert forward.ok and forward.update_order == [a, b]
        backward = timestamp_order_check(history, SetSpec(), [b, a])
        assert backward.ok and backward.update_order == [b, a]

    def test_virtual_timestamps_tie_to_generation_position(self):
        # Updates without a timestamp get the maximal *visible* timestamp
        # (⊥ here: nothing visible), so both tie and generation order must
        # decide.
        a = Label("inc", origin="r1")
        b = Label("inc", origin="r2")
        history = History([a, b])
        result = timestamp_order_check(history, CounterSpec(), [b, a])
        assert result.ok and result.update_order == [b, a]

    def test_distinct_timestamps_dominate_generation_position(self):
        early = Label("add", ("a",), ts=Timestamp(1, "r1"), origin="r1")
        late = Label("add", ("b",), ts=Timestamp(2, "r2"), origin="r2")
        history = History([early, late])
        # Generation order says late first; timestamps override.
        result = timestamp_order_check(history, SetSpec(), [late, early])
        assert result.ok and result.update_order == [early, late]

    def test_candidate_is_deterministic(self):
        ts = Timestamp(3, "r1")
        labels = [Label("add", (x,), ts=ts, origin="r1") for x in "abc"]
        history = History(labels)
        orders = [
            timestamp_order_check(history, SetSpec(), labels).update_order
            for _ in range(3)
        ]
        assert orders[0] == orders[1] == orders[2] == labels


class TestCulpritAttribution:
    def _condition_i(self):
        a = Label("add", ("a",), origin="r1")
        b = Label("add", ("b",), origin="r1")
        return History([a, b], [(b, a)]), [a, b], a

    def test_condition_i_culprit_is_misplaced_update(self):
        history, order, expected = self._condition_i()
        result = check_update_order(history, SetSpec(), order)
        assert not result.ok
        assert "violates visibility" in result.reason
        assert result.culprit == expected

    def test_condition_ii_culprit_is_first_rejected_update(self):
        good = Label("addAfter", (ROOT, "a"), ts=Timestamp(1, "r1"))
        bad = Label("addAfter", ("ghost", "x"), ts=Timestamp(2, "r1"))
        history = History([good, bad])
        result = check_update_order(history, RGASpec(), [good, bad])
        assert not result.ok
        assert "not admitted" in result.reason
        assert result.culprit == bad

    def test_condition_iii_culprit_is_unjustified_query(self):
        inc1, inc2 = Label("inc"), Label("inc")
        read = Label("read", ret=2)  # sees only inc1
        history = History([inc1, inc2, read], [(inc1, read)])
        result = check_update_order(history, CounterSpec(), [inc1, inc2])
        assert not result.ok
        assert "not justified" in result.reason
        assert result.culprit == read

    def test_culprits_identical_with_frontier_cache(self):
        # The shared trie is a pure cache: failing checks must attribute
        # the same culprit with and without it.
        cases = []
        history, order, _ = self._condition_i()
        cases.append((history, SetSpec(), order))
        inc1, inc2 = Label("inc"), Label("inc")
        read = Label("read", ret=2)
        cases.append((
            History([inc1, inc2, read], [(inc1, read)]),
            CounterSpec(), [inc1, inc2],
        ))
        for history, spec, order in cases:
            plain = check_update_order(history, spec, order)
            cached = check_update_order(
                history, spec, order, frontiers=FrontierCache(spec)
            )
            assert plain.ok == cached.ok is False
            assert plain.culprit == cached.culprit
            assert plain.reason == cached.reason
