"""Linting every registered specification."""

import pytest

from repro.core.label import Label
from repro.core.sentinels import BEGIN, END, ROOT
from repro.core.speccheck import lint_spec
from repro.core.spec import Role, SequentialSpec
from repro.specs import (
    AddAt1Spec,
    AddAt2Spec,
    CounterSpec,
    LWWRegisterSpec,
    ORSetSpec,
    RGASpec,
    SetSpec,
    WookiSpec,
)


def counter_case():
    alphabet = [Label("inc"), Label("dec")]

    def probes(state):
        return [Label("read", ret=state), Label("read", ret=state + 1)]

    return CounterSpec(), alphabet, probes


def set_case():
    alphabet = [
        Label("add", ("a",)), Label("add", ("b",)), Label("remove", ("a",))
    ]

    def probes(state):
        return [Label("read", ret=state), Label("read", ret={"zz"})]

    return SetSpec(), alphabet, probes


def register_case():
    alphabet = [Label("write", ("a",)), Label("write", ("b",))]

    def probes(state):
        return [Label("read", ret=state)]

    return LWWRegisterSpec(), alphabet, probes


def orset_case():
    alphabet = [
        Label("add", ("a", 1)), Label("add", ("a", 2)),
        Label("remove", (frozenset({("a", 1)}),)),
    ]

    def probes(state):
        return [
            Label("read", ret=frozenset(e for e, _ in state)),
            Label("readIds", ("a",),
                  ret=frozenset(p for p in state if p[0] == "a")),
        ]

    return ORSetSpec(), alphabet, probes


def rga_case():
    alphabet = [
        Label("addAfter", (ROOT, "a")), Label("addAfter", ("a", "b")),
        Label("remove", ("a",)),
    ]

    def probes(state):
        sequence, tombs = state
        visible = tuple(
            x for x in sequence if x not in tombs and x != ROOT
        )
        return [Label("read", ret=visible)]

    return RGASpec(), alphabet, probes


def wooki_case():
    alphabet = [
        Label("addBetween", (BEGIN, "a", END)),
        Label("addBetween", (BEGIN, "b", END)),
        Label("remove", ("a",)),
    ]

    def probes(state):
        sequence, tombs = state
        visible = tuple(
            x for x in sequence if x not in tombs and x not in (BEGIN, END)
        )
        return [Label("read", ret=visible)]

    return WookiSpec(), alphabet, probes


def addat_case(spec_cls):
    alphabet = [
        Label("addAt", ("a", 0)), Label("addAt", ("b", 1)),
        Label("remove", ("a",)),
    ]

    def probes(state):
        if isinstance(state, tuple) and len(state) == 2 and isinstance(
            state[1], frozenset
        ):
            sequence, tombs = state
            visible = tuple(x for x in sequence if x not in tombs)
        else:
            visible = tuple(state)
        return [Label("read", ret=visible)]

    return spec_cls(), alphabet, probes


CASES = [
    ("Counter", counter_case),
    ("Set", set_case),
    ("Register", register_case),
    ("OR-Set", orset_case),
    ("RGA", rga_case),
    ("Wooki", wooki_case),
    ("addAt1", lambda: addat_case(AddAt1Spec)),
    ("addAt2", lambda: addat_case(AddAt2Spec)),
]


@pytest.mark.parametrize("name,case", CASES, ids=[c[0] for c in CASES])
def test_spec_lints_clean(name, case):
    spec, alphabet, probes = case()
    report = lint_spec(spec, alphabet, probes)
    assert report.ok, report.violations
    assert report.states_explored > 1


def test_nondeterminism_detected_for_wooki():
    spec, alphabet, probes = wooki_case()
    report = lint_spec(spec, alphabet, probes)
    assert report.nondeterministic


def test_deterministic_specs_flagged_as_such():
    spec, alphabet, probes = counter_case()
    report = lint_spec(spec, alphabet, probes)
    assert not report.nondeterministic


class ImpureQuerySpec(SequentialSpec):
    """A broken spec whose query mutates the state."""

    name = "Spec(broken)"

    def initial(self):
        return 0

    def step(self, state, label):
        if label.method == "inc":
            return [state + 1]
        return [state + 1]  # "query" bumps the state: impure

    def role(self, method):
        return Role.UPDATE if method == "inc" else Role.QUERY


def test_impure_query_detected():
    spec = ImpureQuerySpec()
    report = lint_spec(
        spec, [Label("inc")], lambda state: [Label("peek", ret=state)]
    )
    assert not report.ok
    assert any("changed the state" in v for v in report.violations)
