"""Session guarantees (Terry et al.) over histories."""

import pytest

from repro.core.history import History
from repro.core.label import Label
from repro.core.sessions import check_session_guarantees, sessions_of
from repro.crdts import OpORSet
from repro.runtime import ORSetWorkload, random_op_execution


def lab(method, origin):
    return Label(method, origin=origin)


class TestSessionsOf:
    def test_groups_by_origin(self):
        a, b, c = lab("m", "r1"), lab("m", "r2"), lab("m", "r1")
        assert sessions_of([a, b, c]) == {"r1": [a, c], "r2": [b]}

    def test_missing_origin_raises(self):
        with pytest.raises(ValueError):
            sessions_of([Label("m")])


class TestGuarantees:
    def test_runtime_histories_satisfy_all(self):
        system = random_op_execution(
            OpORSet(), ORSetWorkload(), operations=12, seed=5
        )
        report = check_session_guarantees(
            system.history(), system.generation_order
        )
        assert report.all_hold, report.violations

    def test_ryw_violation_detected(self):
        first, second = lab("m", "r1"), lab("m", "r1")
        h = History([first, second])  # second doesn't see first
        report = check_session_guarantees(h, [first, second])
        assert not report.read_your_writes
        assert any("RYW" in v for v in report.violations)

    def test_monotonic_reads_violation_detected(self):
        # second sees neither `other` nor `first`: the visible set shrank.
        # (With session order inside a transitively-closed visibility,
        # monotonic reads cannot be violated — the violation requires the
        # session edge to be missing too.)
        other = lab("m", "r2")
        first, second = lab("m", "r1"), lab("m", "r1")
        h = History([other, first, second], [(other, first)])
        report = check_session_guarantees(h, [other, first, second])
        assert not report.monotonic_reads

    def test_inheritance_violation_detected(self):
        # observer sees second but not its session predecessor first —
        # possible only because first ⊀ second in this (broken) history.
        first, second = lab("m", "r1"), lab("m", "r1")
        observer = lab("m", "r2")
        h = History([first, second, observer], [(second, observer)])
        report = check_session_guarantees(h, [first, second, observer])
        assert not report.session_order_inherited

    def test_clean_cross_replica_history(self):
        first, second = lab("m", "r1"), lab("m", "r1")
        observer = lab("m", "r2")
        h = History(
            [first, second, observer],
            [(first, second), (first, observer), (second, observer)],
        )
        report = check_session_guarantees(h, [first, second, observer])
        assert report.all_hold
