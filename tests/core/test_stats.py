"""History statistics."""

from repro.core.history import History
from repro.core.label import Label
from repro.core.stats import greedy_max_antichain, history_stats
from repro.specs import CounterSpec


def labels(n):
    return [Label("inc") for _ in range(n)]


class TestHistoryStats:
    def test_counts(self):
        incs = labels(3)
        read = Label("read", ret=3)
        h = History(incs + [read], [(i, read) for i in incs])
        stats = history_stats(h, CounterSpec())
        assert stats.operations == 4
        assert stats.updates == 3 and stats.queries == 1
        assert stats.vis_edges == 3 and stats.closure_edges == 3
        assert stats.concurrent_pairs == 3  # the three incs pairwise

    def test_density_total_order(self):
        a, b, c = labels(3)
        h = History([a, b, c], [(a, b), (b, c), (a, c)])
        assert history_stats(h).closure_density == 1.0

    def test_density_antichain(self):
        h = History(labels(4))
        stats = history_stats(h)
        assert stats.closure_density == 0.0
        assert stats.max_antichain == 4

    def test_empty_history(self):
        stats = history_stats(History([]))
        assert stats.operations == 0
        assert stats.closure_density == 1.0

    def test_no_spec_means_no_split(self):
        h = History(labels(2))
        stats = history_stats(h)
        assert stats.updates == 0 and stats.queries == 0


class TestAntichain:
    def test_chain_is_one(self):
        a, b = labels(2)
        assert greedy_max_antichain(History([a, b], [(a, b)])) == 1

    def test_mixed(self):
        a, b, c = labels(3)
        h = History([a, b, c], [(a, b)])  # c concurrent with both
        assert greedy_max_antichain(h) == 2
