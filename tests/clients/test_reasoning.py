"""Client-side reasoning (Sec. 3.3)."""

from repro.clients import (
    check_client_assertion,
    enumerate_ra_linearizations,
    possible_query_returns,
)
from repro.core.history import History
from repro.core.label import Label
from repro.crdts import OpCounter, OpORSet
from repro.scenarios import section33_programs
from repro.specs import CounterSpec, ORSetRewriting, ORSetSpec


class TestSection33:
    def test_postcondition_holds_in_all_interleavings(self):
        programs, postcondition = section33_programs()
        result = check_client_assertion(OpORSet, programs, postcondition)
        assert result.holds
        # Distinct final configurations after reduction/dedup (the naive
        # explorer counted raw interleavings; see docs/exploration.md).
        assert result.configurations > 25
        assert result.counterexamples == []

    def test_false_assertion_yields_counterexample(self):
        programs, _ = section33_programs()

        def wrong(returns):
            return "a" in returns["r1"][2]  # X always contains a — false

        result = check_client_assertion(OpORSet, programs, wrong)
        assert not result.holds
        assert result.counterexamples

    def test_counter_invariant(self):
        programs = {
            "r1": [("inc", ()), ("read", ())],
            "r2": [("inc", ()), ("read", ())],
        }

        def at_least_own_inc(returns):
            return returns["r1"][1] >= 1 and returns["r2"][1] >= 1

        result = check_client_assertion(OpCounter, programs, at_least_own_inc)
        assert result.holds


class TestEnumeration:
    def test_enumerates_all_witnesses(self):
        inc1, inc2 = Label("inc"), Label("inc")
        h = History([inc1, inc2])
        witnesses = list(enumerate_ra_linearizations(h, CounterSpec()))
        orders = {tuple(u) for u, _ in witnesses}
        assert orders == {(inc1, inc2), (inc2, inc1)}

    def test_spec_filters_witnesses(self):
        inc = Label("inc")
        read = Label("read", ret=1)
        h = History([inc, read], [(inc, read)])
        witnesses = list(enumerate_ra_linearizations(h, CounterSpec()))
        assert len(witnesses) == 1
        _, full = witnesses[0]
        assert full == [inc, read]

    def test_orset_rewriting_enumeration(self):
        add = Label("add", ("a",), ret=1)
        read = Label("read", ret=frozenset({"a"}))
        h = History([add, read], [(add, read)])
        witnesses = list(
            enumerate_ra_linearizations(h, ORSetSpec(), ORSetRewriting())
        )
        assert witnesses


class TestPossibleReturns:
    def test_counter_read_range(self):
        inc1, inc2 = Label("inc"), Label("inc")
        read = Label("read", ret=1)
        h = History([inc1, inc2, read], [(inc1, read)])
        returns = possible_query_returns(h, CounterSpec(), read)
        assert returns == [1]
