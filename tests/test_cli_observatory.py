"""CLI surface of the exploration observatory.

``--progress`` / ``--journal`` / ``--heartbeat-log`` on ``exhaustive``
and ``chaos``, ``stats --phases``, ``table --trace-checks``, and the
``bench diff`` regression gate.
"""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.obs.heartbeat import HEARTBEAT_SCHEMA
from repro.obs.journal import read_journal


class TestParser:
    def test_progress_flag_takes_optional_interval(self):
        args = build_parser().parse_args(["exhaustive", "--progress"])
        assert args.progress == 2.0
        args = build_parser().parse_args(
            ["exhaustive", "--progress", "0.25"])
        assert args.progress == 0.25
        assert build_parser().parse_args(["exhaustive"]).progress is None

    def test_chaos_shares_the_observatory_flags(self):
        args = build_parser().parse_args(
            ["chaos", "--progress", "--journal", "j.jsonl",
             "--heartbeat-log", "hb.jsonl"])
        assert args.progress == 2.0
        assert args.journal == "j.jsonl"
        assert args.heartbeat_log == "hb.jsonl"

    def test_bench_diff_args(self):
        args = build_parser().parse_args(
            ["bench", "diff", "old.json", "new.json", "--tolerance", "0.1"])
        assert (args.old, args.new, args.tolerance) \
            == ("old.json", "new.json", 0.1)

    def test_stats_phases_flag(self):
        assert build_parser().parse_args(
            ["stats", "x.json", "--phases"]).phases is True

    def test_table_trace_checks_flag(self):
        assert build_parser().parse_args(
            ["table", "--trace-checks"]).trace_checks is True


class TestExhaustiveObservatory:
    def test_serial_run_writes_all_artifacts(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        hb_log = str(tmp_path / "heartbeat.jsonl")
        metrics = str(tmp_path / "metrics.json")
        assert main(["exhaustive", "--scope", "counter",
                     "--progress", "0", "--journal", journal,
                     "--heartbeat-log", hb_log,
                     "--metrics", metrics]) == 0
        captured = capsys.readouterr()
        assert f"journal written to {journal}" in captured.out
        assert "[progress]" in captured.err
        loaded = read_journal(journal)
        kinds = {event["kind"] for event in loaded["events"]}
        assert {"scope.start", "scope.end"} <= kinds
        with open(hb_log, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert lines[0] == {"schema": HEARTBEAT_SCHEMA}
        assert len(lines) > 1 and lines[1]["worker"] == "w0"

    def test_heartbeat_log_without_progress_stays_silent(self, tmp_path,
                                                         capsys):
        hb_log = str(tmp_path / "heartbeat.jsonl")
        assert main(["exhaustive", "--scope", "counter",
                     "--heartbeat-log", hb_log]) == 0
        captured = capsys.readouterr()
        assert "[progress]" not in captured.err
        with open(hb_log, encoding="utf-8") as handle:
            assert json.loads(handle.readline())["schema"] \
                == HEARTBEAT_SCHEMA

    def test_stats_phases_renders_profile(self, tmp_path, capsys):
        metrics = str(tmp_path / "metrics.json")
        assert main(["exhaustive", "--scope", "counter",
                     "--metrics", metrics]) == 0
        capsys.readouterr()
        assert main(["stats", metrics, "--phases"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("phase profile")
        assert "engine wall" in out

    def test_stats_phases_degrades_on_old_artifact(self, tmp_path, capsys):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({
            "schema": "repro.metrics.artifact/1", "command": "x",
            "metrics": {"schema": "repro.metrics/1", "instruments": {}},
            "counters": {}, "events": [],
        }))
        assert main(["stats", str(path), "--phases"]) == 0
        assert "no phase profile" in capsys.readouterr().out


class TestChaosObservatory:
    def test_chaos_journal_records_crashes(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        assert main(["chaos", "--scope", "counter", "--plan", "crash",
                     "--soak", "2", "--journal", journal]) == 0
        capsys.readouterr()
        kinds = [e["kind"] for e in read_journal(journal)["events"]]
        assert "chaos.crash" in kinds


class TestTableTraceChecks:
    def test_trace_checks_populates_check_events(self, tmp_path, capsys):
        metrics = str(tmp_path / "metrics.json")
        assert main(["table", "--executions", "1", "--operations", "4",
                     "--trace-checks", "--metrics", metrics]) == 0
        capsys.readouterr()
        with open(metrics, encoding="utf-8") as handle:
            artifact = json.load(handle)
        checks = [event for event in artifact.get("events", [])
                  if event.get("type") == "check"]
        assert checks and all(event["ok"] for event in checks)


class TestBenchDiff:
    def _write(self, path, doc):
        path.write_text(json.dumps(doc))
        return str(path)

    def test_self_compare_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path / "bench.json",
                           {"s": {"configurations": 5, "seconds": 1.0}})
        assert main(["bench", "diff", path, path]) == 0
        out = capsys.readouterr().out
        assert "verdict: ok (0 gating)" in out

    def test_injected_regression_exits_one(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json",
                          {"s": {"distinct_configurations": 100}})
        new = self._write(tmp_path / "new.json",
                          {"s": {"distinct_configurations": 999}})
        assert main(["bench", "diff", old, new]) == 1
        assert "verdict: REGRESSION (1 gating)" in capsys.readouterr().out

    def test_tolerance_flag_tightens_the_gate(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", {"s": {"seconds": 1.0}})
        new = self._write(tmp_path / "new.json", {"s": {"seconds": 1.2}})
        assert main(["bench", "diff", old, new]) == 0
        capsys.readouterr()
        assert main(["bench", "diff", old, new, "--tolerance", "0.05"]) == 1

    def test_unreadable_file_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["bench", "diff", str(bad), str(bad)]) == 2
        assert "cannot diff bench artifacts" in capsys.readouterr().err
        assert main(["bench", "diff", str(tmp_path / "missing.json"),
                     str(bad)]) == 2
