#!/usr/bin/env python3
"""Collaborative text editing over RGA — the paper's motivating workload.

Two writers edit the same document from different sites.  Concurrent
insertions after the same character conflict; RGA's timestamp trees resolve
them deterministically (higher timestamp first, Sec. 2.1), every replica
converges, and the whole execution is RA-linearizable w.r.t. ``Spec(RGA)``
in *timestamp order* (Fig. 12: RGA, OB, TO).

Also demonstrated: the same document driven through Wooki (``addBetween``),
which linearizes in *execution order* against a nondeterministic spec.
"""

from repro import ROOT, OpBasedSystem
from repro.core.ralin import execution_order_check, timestamp_order_check
from repro.crdts import OpRGA, OpWooki
from repro.core.sentinels import BEGIN, END
from repro.specs import RGASpec, WookiSpec


def type_word(system, replica, after, word):
    """Insert ``word`` one character at a time after element ``after``."""
    anchor = after
    for char in word:
        system.invoke(replica, "addAfter", (anchor, char))
        anchor = char


def rga_session() -> None:
    print("== RGA session ==")
    doc = OpBasedSystem(OpRGA(), replicas=("laptop", "phone"))

    # The owner drafts "hi" on the laptop; the draft syncs to the phone.
    type_word(doc, "laptop", ROOT, "hi")
    doc.deliver_all()

    # Now both devices edit *concurrently* after the same character 'i'.
    doc.invoke("laptop", "addAfter", ("i", "!"))
    doc.invoke("phone", "addAfter", ("i", "?"))
    # And the phone deletes the 'h' while offline.
    doc.invoke("phone", "remove", ("h",))

    print("  laptop sees:", "".join(doc.invoke("laptop", "read").ret))
    print("  phone  sees:", "".join(doc.invoke("phone", "read").ret))

    doc.deliver_all()
    final = doc.invoke("laptop", "read").ret
    print("  converged  :", "".join(final))
    doc.deliver_all()
    assert doc.state("laptop") == doc.state("phone")

    result = timestamp_order_check(
        doc.history(), RGASpec(), doc.generation_order
    )
    assert result.ok
    print("  timestamp-order RA-linearization: OK "
          f"({len(result.update_order)} updates)")


def wooki_session() -> None:
    print("== Wooki session ==")
    doc = OpBasedSystem(OpWooki(), replicas=("laptop", "phone"))
    doc.invoke("laptop", "addBetween", (BEGIN, "h", END))
    doc.invoke("laptop", "addBetween", ("h", "i", END))
    doc.deliver_all()

    # Concurrent inserts into the same gap (between 'h' and 'i').
    doc.invoke("laptop", "addBetween", ("h", "e", "i"))
    doc.invoke("phone", "addBetween", ("h", "o", "i"))
    doc.deliver_all()

    final = doc.invoke("laptop", "read").ret
    print("  converged  :", "".join(final))
    doc.deliver_all()
    assert doc.state("laptop") == doc.state("phone")

    result = execution_order_check(
        doc.history(), WookiSpec(), doc.generation_order
    )
    assert result.ok
    print("  execution-order RA-linearization: OK")


if __name__ == "__main__":
    rga_session()
    wooki_session()
