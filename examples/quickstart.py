#!/usr/bin/env python3
"""Quickstart: replicate an OR-Set, race updates, check RA-linearizability.

Walks through the library's core loop:

1. spin up a replicated op-based OR-Set (three replicas, causal delivery);
2. issue conflicting concurrent updates;
3. deliver everything and observe convergence;
4. extract the execution's history ``(L, vis)`` and check it is
   RA-linearizable w.r.t. ``Spec(OR-Set)`` after the query-update
   rewriting γ of Example 3.6.
"""

from repro import OpBasedSystem
from repro.core.convergence import check_convergence
from repro.core.ralin import check_ra_linearizable
from repro.crdts import OpORSet
from repro.specs import ORSetRewriting, ORSetSpec


def main() -> None:
    system = OpBasedSystem(OpORSet(), replicas=("alice", "bob", "carol"))

    # Alice and Bob race on element "x": Bob removes it having seen only
    # his own add, while Alice's add is still in flight.
    system.invoke("alice", "add", ("x",))
    system.invoke("bob", "add", ("x",))
    system.invoke("bob", "remove", ("x",))
    system.invoke("carol", "add", ("y",))

    print("before delivery:")
    for replica in system.replicas:
        print(f"  {replica:>6} reads {system.invoke(replica, 'read').ret}")

    system.deliver_all()

    print("after delivery (add wins over the concurrent remove):")
    reads = {}
    for replica in system.replicas:
        reads[replica] = system.invoke(replica, "read").ret
        print(f"  {replica:>6} reads {reads[replica]}")
    system.deliver_all()

    converged, offenders = check_convergence(system.replica_views())
    assert converged, offenders
    assert all(r == frozenset({"x", "y"}) for r in reads.values())

    result = check_ra_linearizable(
        system.history(), ORSetSpec(), gamma=ORSetRewriting()
    )
    assert result.ok
    print("\nhistory is RA-linearizable; one witness linearization:")
    for label in result.linearization:
        print(f"  {label!r}")


if __name__ == "__main__":
    main()
