#!/usr/bin/env python3
"""Extending the library: build, specify, and verify a *new* CRDT.

The workflow a library adopter follows, end to end, on a data type the
paper never mentions — an **Enable-Wins Flag** (enable beats concurrent
disable, the flag analogue of the OR-Set):

1. implement the op-based CRDT (generator/effector split);
2. write its sequential specification;
3. write the query-update rewriting γ (``disable`` is a query-update:
   it disables only the enable-tokens it observed);
4. bundle everything in a ``CRDTEntry`` and run the full harness —
   randomized verification, bounded-exhaustive coverage, differential
   testing, and a conflict demo.
"""

import random
from typing import Any, FrozenSet, Iterable, Tuple

from repro.core.label import Label
from repro.core.rewriting import QueryUpdateRewriting, Rewritten
from repro.core.spec import Role, SequentialSpec
from repro.crdts.base import Effector, GeneratorResult, OpBasedCRDT
from repro.proofs import CRDTEntry, exhaustive_verify, verify_entry
from repro.proofs.differential import run_differential
from repro.runtime import OpBasedSystem
from repro.runtime.workloads import Workload


# ----------------------------------------------------------------------
# 1. The implementation
# ----------------------------------------------------------------------

class EWFlag(OpBasedCRDT):
    """Enable-wins flag: the state is a set of live enable-tokens."""

    type_name = "EW-Flag"
    methods = {
        "enable": Role.UPDATE,
        "disable": Role.QUERY_UPDATE,
        "read": Role.QUERY,
    }
    timestamped_methods = frozenset({"enable"})

    def initial_state(self) -> FrozenSet[Any]:
        return frozenset()

    def generator(self, state, method, args, ts) -> GeneratorResult:
        if method == "enable":
            return GeneratorResult(ret=ts, effector=Effector("enable", (ts,)))
        if method == "disable":
            observed = frozenset(state)
            return GeneratorResult(
                ret=observed, effector=Effector("disable", (observed,))
            )
        if method == "read":
            return GeneratorResult(ret=bool(state), effector=None)
        raise KeyError(method)

    def apply_effector(self, state, effector: Effector):
        if effector.method == "enable":
            (token,) = effector.args
            return state | {token}
        if effector.method == "disable":
            (observed,) = effector.args
            return state - observed
        raise KeyError(effector.method)


# ----------------------------------------------------------------------
# 2. The sequential specification (over rewritten labels)
# ----------------------------------------------------------------------

class EWFlagSpec(SequentialSpec):
    """Abstract state: the set of live enable-tokens."""

    name = "Spec(EW-Flag)"
    _roles = {
        "enable": Role.UPDATE,
        "disable": Role.UPDATE,
        "readTokens": Role.QUERY,
        "read": Role.QUERY,
    }

    def initial(self):
        return frozenset()

    def step(self, state, label: Label) -> Iterable[Any]:
        if label.method == "enable":
            (token,) = label.args
            return [] if token in state else [state | {token}]
        if label.method == "disable":
            (observed,) = label.args
            return [state - observed]
        if label.method == "readTokens":
            return [state] if label.ret == state else []
        if label.method == "read":
            return [state] if label.ret == bool(state) else []
        raise KeyError(label.method)

    def role(self, method: str) -> Role:
        return self._roles[method]


# ----------------------------------------------------------------------
# 3. The query-update rewriting γ
# ----------------------------------------------------------------------

class EWFlagRewriting(QueryUpdateRewriting):
    """``disable() ⇒ R  ↦  (readTokens() ⇒ R, disable(R))``."""

    def __init__(self) -> None:
        self._cache = {}

    def rewrite(self, label: Label) -> Rewritten:
        if label not in self._cache:
            if label.method == "enable":
                self._cache[label] = (
                    Label("enable", (label.ret,), ts=label.ts,
                          obj=label.obj, origin=label.origin),
                )
            elif label.method == "disable":
                query = Label("readTokens", (), ret=label.ret,
                              obj=label.obj, origin=label.origin)
                update = Label("disable", (label.ret,),
                               obj=label.obj, origin=label.origin)
                self._cache[label] = (query, update)
            else:
                self._cache[label] = (label,)
        return self._cache[label]


class EWFlagWorkload(Workload):
    def propose(self, state, rng: random.Random):
        roll = rng.random()
        if roll < 0.4:
            return ("enable", ())
        if roll < 0.75:
            return ("disable", ())
        return ("read", ())


# ----------------------------------------------------------------------
# 4. Run the harness
# ----------------------------------------------------------------------

def main() -> None:
    entry = CRDTEntry(
        name="EW-Flag",
        kind="OB", lin_class="EO",
        make_crdt=EWFlag,
        make_spec=EWFlagSpec,
        make_gamma=EWFlagRewriting,
        abs_fn=lambda state: state,
        make_workload=EWFlagWorkload,
        in_figure_12=False,
        source="this example",
    )

    result = verify_entry(entry, executions=10, operations=12)
    print(f"randomized harness : verified={result.verified} "
          f"({result.executions} executions, {result.operations} ops)")
    assert result.verified, result.failures

    programs = {
        "r1": [("enable", ()), ("disable", ()), ("read", ())],
        "r2": [("enable", ()), ("read", ())],
    }
    coverage = exhaustive_verify(entry, programs)
    print(f"exhaustive harness : {coverage.configurations} interleavings, "
          f"all RA-linearizable={coverage.ok}")
    assert coverage.ok, coverage.failures

    diff = run_differential(entry, operations=20, seed=1)
    print(f"differential test  : matches Spec(EW-Flag)={diff.ok}")
    assert diff.ok

    # The headline behaviour: enable wins over a concurrent disable.
    system = OpBasedSystem(EWFlag(), replicas=("r1", "r2"))
    system.invoke("r1", "enable")
    system.deliver_all()
    system.invoke("r1", "disable")   # saw the first enable only
    system.invoke("r2", "enable")    # concurrent re-enable
    system.deliver_all()
    reads = [system.invoke(r, "read").ret for r in ("r1", "r2")]
    print(f"conflict demo      : concurrent enable∥disable ⇒ reads={reads} "
          "(enable wins)")
    assert reads == [True, True]


if __name__ == "__main__":
    main()
