#!/usr/bin/env python3
"""Regenerate the paper's Fig. 12 table from the verification harness.

Runs the full proof methodology — Commutativity (op-based) or Prop1–Prop6
plus the fold oracle (state-based), Refinement / Refinement_ts, convergence,
and per-execution RA-linearization checking — over randomized executions of
every CRDT in the catalogue, then prints the table.

Usage:  python examples/verify_figure12.py [executions] [operations]
"""

import sys

from repro.proofs import ALL_ENTRIES, format_table, verify_entry


def main() -> None:
    executions = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    operations = int(sys.argv[2]) if len(sys.argv) > 2 else 10

    results = []
    for entry in ALL_ENTRIES:
        print(f"verifying {entry.name} "
              f"({entry.kind}, {entry.lin_class}, {entry.source}) ...")
        result = verify_entry(
            entry, executions=executions, operations=operations
        )
        if not result.verified:
            for failure in result.failures[:3]:
                print(f"  !! {failure}")
        results.append(result)

    print()
    print(format_table(
        results,
        title=(
            "Fig. 12 — CRDTs proved RA-linearizable and the class of "
            "linearizations used.\n"
            "SB: State-Based, OB: Operation-Based, "
            "EO: Execution-Order, TO: Timestamp-Order."
        ),
    ))
    assert all(r.verified for r in results)


if __name__ == "__main__":
    main()
