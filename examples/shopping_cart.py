#!/usr/bin/env python3
"""A geo-replicated shopping cart on the OR-Set (the Dynamo scenario).

Two sessions of the same customer race during a partition, Fig. 5a-style:

* the US session adds a book, adds a pen, then removes the book;
* the EU session adds a pen, adds a book, then removes the pen.

After the partition heals, *both* items are back — each remove only erased
the instances it had observed.  This "resurrected items" anomaly is exactly
the OR-Set behaviour of Fig. 5a: the history admits **no** standard
whole-prefix linearization against a sequential Set (any linearization ends
with a remove, so some item would be missing), yet it *is* RA-linearizable
once ``remove`` is split by the query-update rewriting γ.
"""

from repro import OpBasedSystem
from repro.core.ralin import check_ra_linearizable
from repro.core.strong import check_strong_linearizable
from repro.crdts import OpORSet
from repro.specs import ORSetRewriting, ORSetSpec, SetSpec, plain_set_view


def main() -> None:
    cart = OpBasedSystem(OpORSet(), replicas=("us-east", "eu-west"))

    # Partitioned: neither region sees the other's operations.
    cart.invoke("us-east", "add", ("book",))
    cart.invoke("us-east", "add", ("pen",))
    cart.invoke("us-east", "remove", ("book",))

    cart.invoke("eu-west", "add", ("pen",))
    cart.invoke("eu-west", "add", ("book",))
    cart.invoke("eu-west", "remove", ("pen",))

    print("during the partition:")
    for region in cart.replicas:
        print(f"  {region:>8}: {sorted(cart.invoke(region, 'read').ret)}")

    cart.deliver_all()
    print("after healing (every remove only erased what it had observed):")
    final = {}
    for region in cart.replicas:
        final[region] = cart.invoke(region, "read").ret
        print(f"  {region:>8}: {sorted(final[region])}")
    cart.deliver_all()
    assert all(v == frozenset({"book", "pen"}) for v in final.values())

    history = cart.history()

    strong = check_strong_linearizable(
        history, SetSpec(), gamma=plain_set_view()
    )
    assert strong is None
    print("\nstandard Set linearization : impossible — the cart is *not* a "
          "linearizable Set (Fig. 5a)")

    ra = check_ra_linearizable(history, ORSetSpec(), gamma=ORSetRewriting())
    assert ra.ok
    print("RA-linearization (Fig. 5b) : found\n")
    for label in ra.linearization:
        print(f"  {label!r}")


if __name__ == "__main__":
    main()
