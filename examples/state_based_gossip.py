#!/usr/bin/env python3
"""State-based CRDTs under adversarial gossip (Sec. 6 / Appendix D).

State-based replicas exchange *states*, merged through a join-semilattice
``merge`` — so messages may be duplicated, reordered, or lost without
breaking convergence, and no causal-delivery machinery is needed.

The script abuses a PN-Counter, a Multi-Value Register, and an
LWW-Element-Set with exactly that adversarial delivery, then runs the
Appendix D proof obligations (Prop1–Prop6, the fold oracle) and the
end-to-end RA-linearizability check on each execution.
"""

from repro.core.convergence import check_convergence
from repro.core.linearization import history_timestamp, ts_sort_key
from repro.core.ralin import execution_order_check, timestamp_order_check
from repro.proofs import check_fold_oracle, check_properties
from repro.proofs.registry import entry_by_name
from repro.runtime import StateBasedSystem


def abuse(entry):
    crdt = entry.make_crdt()
    print(f"== {entry.name} ({crdt.effector_class.value} local effectors) ==")
    system = StateBasedSystem(crdt, replicas=("r1", "r2", "r3"))
    wl = entry.make_workload()
    import random

    rng = random.Random(2024)
    for step in range(12):
        replica = rng.choice(system.replicas)
        proposal = wl.propose(system.state(replica), rng)
        if proposal:
            system.invoke(replica, *proposal)
        if system.messages and rng.random() < 0.4:
            # Duplicate / reorder an arbitrary old message.
            system.receive(rng.choice(system.replicas),
                           rng.choice(system.messages))
        if rng.random() < 0.5:
            src = rng.choice(system.replicas)
            dst = rng.choice([r for r in system.replicas if r != src])
            system.gossip(src, dst)
    system.sync_all()
    for replica in system.replicas:
        system.invoke(replica, "read")
    system.sync_all()

    props = check_properties(system)
    print("  Prop1–Prop6:", "OK" if props.ok else props.violations[0])

    order = list(system.generation_order)
    if entry.lin_class == "TO":
        history = system.history()
        pos = {l: i for i, l in enumerate(order)}
        order.sort(key=lambda l: (ts_sort_key(history_timestamp(history, l)),
                                  pos[l]))
    fold = check_fold_oracle(system, order)
    print("  fold oracle :", "OK" if fold.ok else fold.violations[0])

    converged, _ = check_convergence(system.replica_views())
    print("  convergence :", "OK" if converged else "FAILED")

    checker = (execution_order_check if entry.lin_class == "EO"
               else timestamp_order_check)
    outcome = checker(system.history(), entry.make_spec(),
                      system.generation_order, entry.make_gamma())
    print("  RA-linearizable ({}): {}".format(
        entry.lin_class, "OK" if outcome.ok else outcome.reason))
    assert props.ok and fold.ok and converged and outcome.ok


def main() -> None:
    for name in ("PN-Counter", "Multi-Value Reg.", "LWW-Element Set",
                 "2P-Set"):
        abuse(entry_by_name(name))


if __name__ == "__main__":
    main()
