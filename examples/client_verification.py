#!/usr/bin/env python3
"""Verifying a client of a CRDT (Sec. 3.3).

The paper's example program over a shared OR-Set:

    replica 1: add(a); rem(a); X = read()
    replica 2: add(a);          Y = read()

with post-condition ``a ∈ X ⇒ a ∈ Y``.  The paper argues this over
RA-linearizations; here we (1) model-check it exhaustively against the
operational semantics — every interleaving of generators and causal
deliveries — and (2) enumerate the spec-level RA-linearizations of one
execution, the objects the paper's hand proof quantifies over.
"""

from repro.clients import check_client_assertion, enumerate_ra_linearizations
from repro.crdts import OpORSet
from repro.runtime import OpBasedSystem
from repro.scenarios import section33_programs
from repro.specs import ORSetRewriting, ORSetSpec


def model_check() -> None:
    programs, postcondition = section33_programs()
    result = check_client_assertion(OpORSet, programs, postcondition)
    print(f"explored {result.configurations} final configurations")
    print("post-condition a∈X ⇒ a∈Y:",
          "HOLDS in all of them" if result.holds else "VIOLATED")
    assert result.holds

    # Sanity: a wrong assertion is refuted with a concrete counterexample.
    bad = check_client_assertion(
        OpORSet, programs, lambda returns: "a" in returns["r1"][2]
    )
    assert not bad.holds
    print("refutable claim 'a ∈ X always':",
          f"counterexample returns {bad.counterexamples[0]}")


def enumerate_linearizations() -> None:
    system = OpBasedSystem(OpORSet(), replicas=("r1", "r2"))
    system.invoke("r1", "add", ("a",))
    system.invoke("r1", "remove", ("a",))
    system.invoke("r2", "add", ("a",))
    system.deliver_all()
    x = system.invoke("r1", "read")
    y = system.invoke("r2", "read")
    system.deliver_all()
    print(f"\none fully-delivered execution: X={set(x.ret)} Y={set(y.ret)}")
    print("its RA-linearizations:")
    count = 0
    for _, full in enumerate_ra_linearizations(
        system.history(), ORSetSpec(), ORSetRewriting()
    ):
        count += 1
        print(f"  #{count}: " + " · ".join(repr(l) for l in full))
    assert count >= 1


if __name__ == "__main__":
    model_check()
    enumerate_linearizations()
