#!/usr/bin/env python3
"""Composing CRDT objects (Sec. 5): when does it stay RA-linearizable?

Three experiments:

1. Fig. 9 — two OR-Sets under ⊗: a fixed pair of per-object linearizations
   cannot merge, but the composition is still RA-linearizable (EO objects
   compose, Theorem 5.3).
2. Fig. 10 under ⊗ — two RGAs with independent timestamp generators: the
   composed history is NOT RA-linearizable.
3. The same action sequence under ⊗ts (shared timestamp generator,
   Fig. 11): RA-linearizable again (Theorem 5.5).
"""

from repro.runtime.composition import check_composed_ra_linearizable
from repro.scenarios import fig9_two_orsets, fig10_two_rgas
from repro.specs import ORSetRewriting, ORSetSpec, RGASpec


def experiment_fig9() -> None:
    print("== Fig. 9: two OR-Sets under ⊗ ==")
    scenario = fig9_two_orsets()
    result = check_composed_ra_linearizable(
        scenario.history,
        {"o1": ORSetSpec(), "o2": ORSetSpec()},
        {"o1": ORSetRewriting(), "o2": ORSetRewriting()},
    )
    assert result.ok
    print("  composed history RA-linearizable:", result.ok)
    print("  witness:", " · ".join(repr(l) for l in result.update_order))


def experiment_fig10(shared: bool) -> None:
    flavour = "⊗ts (shared clock)" if shared else "⊗ (independent clocks)"
    print(f"== Fig. 10: two RGAs under {flavour} ==")
    scenario = fig10_two_rgas(shared_timestamps=shared)
    print("  o1.read ⇒", scenario.labels["o1.read"].ret,
          " o2.read ⇒", scenario.labels["o2.read"].ret)
    result = check_composed_ra_linearizable(
        scenario.history, {"o1": RGASpec(), "o2": RGASpec()}
    )
    print("  composed history RA-linearizable:", result.ok)
    assert result.ok is shared


if __name__ == "__main__":
    experiment_fig9()
    experiment_fig10(shared=False)
    experiment_fig10(shared=True)
