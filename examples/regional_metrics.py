#!/usr/bin/env python3
"""Regional metrics with state-based counters — Appendix D in practice.

Three regions count page-views (PN-Counter) and track the most recent
deploy tag (state-based LWW-Register), composed over one gossip mesh with a
shared Lamport clock (the ⊗ts discipline).  Gossip is unreliable-friendly:
merges are idempotent, so re-sending the same snapshot is harmless.

At the end the composed execution is checked RA-linearizable against
``Spec(Counter) ⊗ Spec(Reg)``.
"""

import random

from repro.core.ralin import check_ra_linearizable
from repro.core.spec import ComposedSpec
from repro.crdts import SBLWWRegister, SBPNCounter
from repro.runtime import ComposedStateSystem
from repro.specs import CounterSpec, LWWRegisterSpec

REGIONS = ("us", "eu", "ap")


def main() -> None:
    rng = random.Random(2026)
    mesh = ComposedStateSystem(
        {"views": SBPNCounter(), "deploy": SBLWWRegister()},
        replicas=REGIONS,
    )

    # Traffic: each region counts its own page views and occasionally a
    # deploy updates the tag; gossip spreads both lazily.
    deploys = iter(["v1.0", "v1.1", "v2.0"])
    for step in range(30):
        region = rng.choice(REGIONS)
        if step in (6, 15, 24):
            tag = next(deploys)
            mesh.invoke(region, "write", (tag,), obj="deploy")
            print(f"step {step:>2}: {region} deploys {tag}")
        else:
            mesh.invoke(region, "inc", (), obj="views")
        if rng.random() < 0.5:
            target = rng.choice([r for r in REGIONS if r != region])
            mesh.gossip(region, target)

    print("\nbefore full sync:")
    for region in REGIONS:
        views = mesh.invoke(region, "read", (), obj="views").ret
        tag = mesh.invoke(region, "read", (), obj="deploy").ret
        print(f"  {region}: {views:>3} views, deploy={tag}")

    mesh.sync_all()
    print("after full sync:")
    finals = set()
    for region in REGIONS:
        views = mesh.invoke(region, "read", (), obj="views").ret
        tag = mesh.invoke(region, "read", (), obj="deploy").ret
        finals.add((views, tag))
        print(f"  {region}: {views:>3} views, deploy={tag}")
    assert len(finals) == 1, "regions diverged"
    views, tag = finals.pop()
    assert views == 27 and tag == "v2.0"

    spec = ComposedSpec({"views": CounterSpec(), "deploy": LWWRegisterSpec()})
    result = check_ra_linearizable(mesh.history(), spec)
    assert result.ok, result.reason
    print(f"\ncomposed execution RA-linearizable "
          f"({len(mesh.generation_order)} operations): yes")


if __name__ == "__main__":
    main()
