#!/usr/bin/env python3
"""Debugging workflow: find a bug, persist the execution, inspect it.

What you do when the harness reports a violation:

1. run the harness against a (here deliberately broken) CRDT;
2. re-find a failing execution and *record* its schedule to JSON
   (`repro.runtime.recording`) so the bug is reproducible;
3. replay it on the fixed implementation to confirm the fix;
4. render the offending history with `repro.core.render`.

The planted bug is the paper-famous one: a register that resolves
concurrent writes by arrival order instead of timestamps.
"""

from repro.core.ralin import timestamp_order_check
from repro.core.render import render_history, render_linearization
from repro.crdts import OpLWWRegister
from repro.proofs.mutants import LastDeliveryWinsRegister, verify_mutant
from repro.runtime import (
    OpBasedSystem,
    dumps,
    loads,
    record_schedule,
    replay_schedule,
)
from repro.specs import LWWRegisterSpec


def failing_execution(crdt) -> OpBasedSystem:
    """Two concurrent writes delivered in opposite orders."""
    system = OpBasedSystem(crdt, replicas=("r1", "r2"))
    system.invoke("r1", "write", ("a",))
    system.invoke("r2", "write", ("b",))
    system.deliver_all()
    system.invoke("r1", "read")
    system.invoke("r2", "read")
    system.deliver_all()
    return system


def main() -> None:
    # 1. The harness flags the mutant.
    report = verify_mutant(LastDeliveryWinsRegister, "LWW-Register")
    print("harness verdict on the buggy register:",
          "caught" if not report.verified else "missed")
    print("  first failure:", report.failures[0][:110], "...")

    # 2. Reproduce deterministically and persist the schedule.
    buggy = failing_execution(LastDeliveryWinsRegister())
    reads = [l.ret for l in buggy.generation_order if l.method == "read"]
    print(f"\nbuggy replicas read {reads} — they diverged" if reads[0] != reads[1]
          else f"\nbuggy replicas read {reads}")
    blob = dumps(record_schedule(buggy))
    print(f"recorded schedule: {len(blob)} bytes of JSON")

    print(render_history(
        buggy.history(), buggy.generation_order, title="\noffending history"
    ))

    # 3. Replay the same schedule on the real LWW register.
    fixed = replay_schedule(OpLWWRegister(), loads(blob))
    reads = [l.ret for l in fixed.generation_order if l.method == "read"]
    print(f"\nfixed implementation reads {reads} — converged")
    assert reads[0] == reads[1]

    # 4. And the fixed execution timestamp-order linearizes.
    outcome = timestamp_order_check(
        fixed.history(), LWWRegisterSpec(), fixed.generation_order
    )
    assert outcome.ok
    print(render_linearization(outcome.linearization, title="witness"))


if __name__ == "__main__":
    main()
